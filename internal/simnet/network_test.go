package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// recorder is a test process that logs everything it receives and replays
// a scripted sequence of send actions, one script entry per round.
type recorder struct {
	id       ids.ID
	script   []func(env *RoundEnv)
	received [][]Received
	done     bool
}

func (p *recorder) ID() ids.ID { return p.id }
func (p *recorder) Done() bool { return p.done }

func (p *recorder) Step(env *RoundEnv) {
	p.received = append(p.received, env.Inbox.Slice())
	if len(p.script) > 0 {
		action := p.script[0]
		p.script = p.script[1:]
		if action != nil {
			action(env)
		}
	}
}

func newRecorder(id ids.ID, script ...func(env *RoundEnv)) *recorder {
	return &recorder{id: id, script: script}
}

func body(s string) wire.Payload { return wire.Event{Round: 1, Body: []byte(s)} }

func TestBroadcastReachesEveryoneIncludingSelf(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("x")) })
	b := newRecorder(2)
	c := newRecorder(3)
	for _, p := range []*recorder{a, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*recorder{a, b, c} {
		if len(p.received) != 2 {
			t.Fatalf("node %v stepped %d times", p.id, len(p.received))
		}
		if len(p.received[0]) != 0 {
			t.Fatalf("node %v received before anything was sent", p.id)
		}
		if len(p.received[1]) != 1 || p.received[1][0].From != 1 {
			t.Fatalf("node %v round-2 inbox = %+v", p.id, p.received[1])
		}
	}
}

func TestUnicastDeliversOnlyToTarget(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	a := newRecorder(1, func(env *RoundEnv) { env.Send(3, body("direct")) })
	b := newRecorder(2)
	c := newRecorder(3)
	for _, p := range []*recorder{a, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 2)
	if len(c.received[1]) != 1 {
		t.Fatalf("target inbox = %+v", c.received[1])
	}
	if len(a.received[1]) != 0 || len(b.received[1]) != 0 {
		t.Fatal("unicast leaked to non-targets")
	}
}

func TestSenderIDIsStampedByEngine(t *testing.T) {
	t.Parallel()
	// A Byzantine process sends a payload *claiming* to relay from
	// source 99, but the transport-level From must be its own id.
	net := New(Config{})
	byz := newRecorder(5, func(env *RoundEnv) {
		env.Broadcast(wire.RBMessage{Source: 99, Body: []byte("forged")})
	})
	honest := newRecorder(1)
	if err := net.AddByzantine(byz); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(honest); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 2)
	got := honest.received[1]
	if len(got) != 1 {
		t.Fatalf("inbox = %+v", got)
	}
	if got[0].From != 5 {
		t.Fatalf("From = %v, want the true sender 5", got[0].From)
	}
	rb, ok := got[0].Payload.(wire.RBMessage)
	if !ok || rb.Source != 99 {
		t.Fatalf("payload content altered: %+v", got[0].Payload)
	}
}

func TestIntraRoundDuplicatesDiscarded(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	spammer := newRecorder(1, func(env *RoundEnv) {
		env.Broadcast(body("dup"))
		env.Broadcast(body("dup"))
		env.Send(2, body("dup"))
		env.Broadcast(body("other"))
	})
	sink := newRecorder(2)
	if err := net.Add(spammer); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(sink); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 2)
	if len(sink.received[1]) != 2 {
		t.Fatalf("inbox = %+v, want exactly the two distinct payloads", sink.received[1])
	}
}

func TestCrossRoundRepeatsAreDelivered(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	sender := newRecorder(1,
		func(env *RoundEnv) { env.Broadcast(body("again")) },
		func(env *RoundEnv) { env.Broadcast(body("again")) },
	)
	sink := newRecorder(2)
	if err := net.Add(sender); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(sink); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 3)
	if len(sink.received[1]) != 1 || len(sink.received[2]) != 1 {
		t.Fatalf("cross-round repeat dropped: %+v / %+v", sink.received[1], sink.received[2])
	}
}

func TestDoneProcessStopsSteppingAndReceiving(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	quitter := newRecorder(1)
	quitter.script = []func(env *RoundEnv){
		func(env *RoundEnv) { quitter.done = true },
	}
	chatter := newRecorder(2,
		func(env *RoundEnv) { env.Broadcast(body("r1")) },
		func(env *RoundEnv) { env.Broadcast(body("r2")) },
	)
	if err := net.Add(quitter); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(chatter); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 3)
	if len(quitter.received) != 1 {
		t.Fatalf("done process stepped %d times, want 1", len(quitter.received))
	}
}

func TestRemoveDropsProcessAndPendingMail(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("bye")) })
	b := newRecorder(2)
	if err := net.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(b); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 1)
	net.Remove(2)
	mustRounds(t, net, 1)
	if len(b.received) != 1 {
		t.Fatalf("removed process stepped %d times, want 1", len(b.received))
	}
	if net.Size() != 1 || net.Process(2) != nil {
		t.Fatal("Remove did not detach process")
	}
	if net.Process(1) == nil {
		t.Fatal("surviving process lost")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	if err := net.Add(newRecorder(1)); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(newRecorder(1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
	if err := net.Add(newRecorder(ids.None)); err == nil {
		t.Fatal("zero id accepted")
	}
}

func TestContactRuleEnforcement(t *testing.T) {
	t.Parallel()
	// Node 1 unicasts to node 2 without ever hearing from it: violation.
	net := New(Config{EnforceContactRule: true})
	a := newRecorder(1, func(env *RoundEnv) { env.Send(2, body("hi")) })
	b := newRecorder(2)
	if err := net.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := net.RunRound(); !errors.Is(err, ErrContactRule) {
		t.Fatalf("err = %v, want ErrContactRule", err)
	}
	// The network latches the error.
	if err := net.RunRound(); !errors.Is(err, ErrContactRule) {
		t.Fatalf("subsequent RunRound err = %v", err)
	}
}

func TestContactRuleAllowsReply(t *testing.T) {
	t.Parallel()
	net := New(Config{EnforceContactRule: true})
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("hello")) }, nil)
	b := newRecorder(2, nil, func(env *RoundEnv) { env.Send(1, body("reply")) })
	if err := net.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(b); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 3)
	if len(a.received[2]) != 1 {
		t.Fatalf("reply not delivered: %+v", a.received)
	}
}

func TestContactRuleExemptsByzantine(t *testing.T) {
	t.Parallel()
	net := New(Config{EnforceContactRule: true})
	byz := newRecorder(9, func(env *RoundEnv) { env.Send(1, body("sneak")) })
	honest := newRecorder(1)
	if err := net.AddByzantine(byz); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(honest); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 2)
	if len(honest.received[1]) != 1 {
		t.Fatal("byzantine unicast blocked; should be exempt from contact rule")
	}
}

func TestRunStopsOnPredicate(t *testing.T) {
	t.Parallel()
	net := New(Config{MaxRounds: 50})
	if err := net.Add(newRecorder(1)); err != nil {
		t.Fatal(err)
	}
	rounds, err := net.Run(func(n *Network) bool { return n.Round() >= 5 })
	if err != nil || rounds != 5 {
		t.Fatalf("Run = (%d, %v), want (5, nil)", rounds, err)
	}
}

func TestRunHitsRoundLimit(t *testing.T) {
	t.Parallel()
	net := New(Config{MaxRounds: 7})
	if err := net.Add(newRecorder(1)); err != nil {
		t.Fatal(err)
	}
	rounds, err := net.Run(func(*Network) bool { return false })
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if rounds != 7 {
		t.Fatalf("rounds = %d, want 7", rounds)
	}
}

func TestAllDonePredicate(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	p1 := newRecorder(1)
	p2 := newRecorder(2)
	if err := net.Add(p1); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(p2); err != nil {
		t.Fatal(err)
	}
	pred := AllDone([]ids.ID{1, 2})
	if pred(net) {
		t.Fatal("predicate true before termination")
	}
	p1.done = true
	if pred(net) {
		t.Fatal("predicate true with one process live")
	}
	p2.done = true
	if !pred(net) {
		t.Fatal("predicate false after all done")
	}
	// Removed processes count as finished.
	net.Remove(1)
	if !pred(net) {
		t.Fatal("predicate false after removal")
	}
}

func TestTraceAccounting(t *testing.T) {
	t.Parallel()
	var col trace.Collector
	net := New(Config{Collector: &col})
	payload := body("acct")
	size := len(wire.Encode(payload))
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(payload) })
	b := newRecorder(2)
	c := newRecorder(3)
	for _, p := range []*recorder{a, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 1)
	r := col.Report()
	if r.Sends != 1 {
		t.Fatalf("Sends = %d, want 1 (one broadcast op)", r.Sends)
	}
	if r.Deliveries != 3 {
		t.Fatalf("Deliveries = %d, want 3 (fan-out to all nodes)", r.Deliveries)
	}
	if r.Bytes != int64(3*size) {
		t.Fatalf("Bytes = %d, want %d", r.Bytes, 3*size)
	}
}

func TestInboxIsSortedBySenderThenEncoding(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	// Senders registered and acting in an order different from id order.
	s3 := newRecorder(30, func(env *RoundEnv) { env.Broadcast(body("c")) })
	s1 := newRecorder(10, func(env *RoundEnv) {
		env.Broadcast(body("b"))
		env.Broadcast(body("a"))
	})
	sink := newRecorder(5)
	for _, p := range []*recorder{s3, s1, sink} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 2)
	inbox := sink.received[1]
	if len(inbox) != 3 {
		t.Fatalf("inbox size = %d", len(inbox))
	}
	if inbox[0].From != 10 || inbox[1].From != 10 || inbox[2].From != 30 {
		t.Fatalf("inbox not sorted by sender: %+v", inbox)
	}
	if inbox[0].encoded > inbox[1].encoded {
		t.Fatal("inbox not sorted by encoding within sender")
	}
}

// gossip is a deterministic pseudo-random protocol used to compare the
// sequential and concurrent runners on a non-trivial execution.
type gossip struct {
	id    ids.ID
	rng   *rand.Rand
	peers []ids.ID
	log   []string
	round int
}

func (g *gossip) ID() ids.ID { return g.id }
func (g *gossip) Done() bool { return g.round >= 8 }

func (g *gossip) Step(env *RoundEnv) {
	g.round++
	for m := range env.Inbox.All() {
		g.log = append(g.log, fmt.Sprintf("%d<-%d:%x", env.Round, m.From, m.encoded))
	}
	// Deterministic pseudo-random behaviour seeded per node: broadcast
	// sometimes, unicast sometimes.
	switch g.rng.Intn(3) {
	case 0:
		env.Broadcast(wire.Event{Round: uint64(env.Round), Body: []byte{byte(g.rng.Intn(4))}})
	case 1:
		target := g.peers[g.rng.Intn(len(g.peers))]
		env.Send(target, wire.Event{Round: uint64(env.Round), Body: []byte{byte(g.rng.Intn(4))}})
	default:
		// stay silent
	}
}

func runGossip(t *testing.T, concurrent bool, seed int64) map[ids.ID][]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodeIDs := ids.Sparse(rng, 12)
	net := New(Config{Concurrent: concurrent, MaxRounds: 20})
	procs := make([]*gossip, 0, len(nodeIDs))
	for i, id := range nodeIDs {
		g := &gossip{
			id:    id,
			rng:   rand.New(rand.NewSource(seed + int64(i) + 1)),
			peers: nodeIDs,
		}
		procs = append(procs, g)
		if err := net.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(AllDone(nodeIDs)); err != nil {
		t.Fatal(err)
	}
	out := make(map[ids.ID][]string, len(procs))
	for _, g := range procs {
		out[g.id] = g.log
	}
	return out
}

// The observable execution (every delivery at every node, in order) must
// be identical under the sequential and the pooled concurrent runner.
func TestSequentialAndConcurrentRunnersAgree(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 5; seed++ {
		seq := runGossip(t, false, seed)
		con := runGossip(t, true, seed)
		if len(seq) != len(con) {
			t.Fatalf("seed %d: node count mismatch", seed)
		}
		for id, logSeq := range seq {
			logCon := con[id]
			if len(logSeq) != len(logCon) {
				t.Fatalf("seed %d node %v: %d vs %d deliveries",
					seed, id, len(logSeq), len(logCon))
			}
			for i := range logSeq {
				if logSeq[i] != logCon[i] {
					t.Fatalf("seed %d node %v delivery %d: %q vs %q",
						seed, id, i, logSeq[i], logCon[i])
				}
			}
		}
	}
}

// Property: for random small topologies and scripts, a broadcast in round
// r is received exactly once by every live node in round r+1.
func TestQuickBroadcastDeliveryProperty(t *testing.T) {
	t.Parallel()
	prop := func(nRaw, senderRaw uint8) bool {
		n := int(nRaw%6) + 2
		senderIdx := int(senderRaw) % n
		nodeIDs := ids.Consecutive(100, n)
		net := New(Config{})
		recs := make([]*recorder, n)
		for i, id := range nodeIDs {
			var script []func(env *RoundEnv)
			if i == senderIdx {
				script = append(script, func(env *RoundEnv) { env.Broadcast(body("p")) })
			}
			recs[i] = newRecorder(id, script...)
			if err := net.Add(recs[i]); err != nil {
				return false
			}
		}
		if err := net.RunRound(); err != nil {
			return false
		}
		if err := net.RunRound(); err != nil {
			return false
		}
		for _, rec := range recs {
			if len(rec.received[1]) != 1 || rec.received[1][0].From != nodeIDs[senderIdx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustRounds(t *testing.T, net *Network, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if err := net.RunRound(); err != nil {
			t.Fatalf("round %d: %v", net.Round(), err)
		}
	}
}

func TestEventLogRecordsDeliveries(t *testing.T) {
	t.Parallel()
	log := trace.NewEventLog(100)
	net := New(Config{EventLog: log})
	a := newRecorder(1, func(env *RoundEnv) {
		env.Broadcast(body("x"))
		env.Send(2, body("y"))
	})
	b := newRecorder(2)
	if err := net.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(b); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 2)
	events := log.Events()
	// Broadcast to 2 nodes + 1 unicast = 3 deliveries, all in round 2.
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3: %+v", len(events), events)
	}
	broadcasts, unicasts := 0, 0
	for _, e := range events {
		if e.Round != 2 || e.From != 1 || e.Kind != "event" || e.Size == 0 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Broadcast {
			broadcasts++
		} else {
			unicasts++
		}
	}
	if broadcasts != 2 || unicasts != 1 {
		t.Fatalf("broadcasts=%d unicasts=%d", broadcasts, unicasts)
	}
}
