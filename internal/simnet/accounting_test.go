package simnet

import (
	"testing"

	"uba/internal/trace"
)

// statsRecorder captures every RoundAccounting the engine hands to a
// RoundStatsObserver.
type statsRecorder struct {
	rounds []int
	accts  []RoundAccounting
}

func (r *statsRecorder) ObserveRound(round int, events []trace.Event) {}

func (r *statsRecorder) ObserveRoundStats(round int, acct RoundAccounting) {
	r.rounds = append(r.rounds, round)
	r.accts = append(r.accts, acct)
}

// TestRoundAccountingSplit pins the broadcast/unicast split and the
// per-correct-node maxima: a correct broadcaster, a correct unicaster
// with two targets, a silent correct node, and a flooding Byzantine
// node whose sends count in the totals but not the correct maxima.
func TestRoundAccountingSplit(t *testing.T) {
	t.Parallel()
	rec := &statsRecorder{}
	net := New(Config{Observer: rec})
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("a")) })
	b := newRecorder(2, func(env *RoundEnv) {
		env.Send(1, body("b1"))
		env.Send(3, body("b2"))
	})
	c := newRecorder(3)
	for _, p := range []*recorder{a, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	byz := newRecorder(4, func(env *RoundEnv) {
		for i := 0; i < 5; i++ {
			env.Broadcast(body("flood"))
		}
		env.Send(1, body("poke"))
	})
	if err := net.AddByzantine(byz); err != nil {
		t.Fatal(err)
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}
	if len(rec.accts) != 1 {
		t.Fatalf("observer saw %d rounds, want 1", len(rec.accts))
	}
	acct := rec.accts[0]
	if acct.Broadcasts != 6 || acct.Unicasts != 3 {
		t.Errorf("split = %d broadcasts, %d unicasts; want 6, 3", acct.Broadcasts, acct.Unicasts)
	}
	if acct.Nodes != 4 {
		t.Errorf("Nodes = %d, want 4", acct.Nodes)
	}
	// The Byzantine flooder (5 broadcasts, 1 unicast) must not move the
	// correct maxima: the largest correct tallies are a's 1 broadcast
	// and b's 2 unicasts.
	if acct.CorrectMaxBroadcasts != 1 || acct.CorrectMaxUnicasts != 2 {
		t.Errorf("correct maxima = %d broadcasts, %d unicasts; want 1, 2",
			acct.CorrectMaxBroadcasts, acct.CorrectMaxUnicasts)
	}
	// Broadcast dedup fans each distinct broadcast to all 4 nodes; the
	// flooder's 5 identical bodies dedup to one delivered copy each.
	if acct.Deliveries == 0 || acct.Bytes == 0 {
		t.Errorf("deliveries/bytes not filled: %+v", acct)
	}
}

// TestRoundAccountingMatchesCollector checks the split the observer
// sees is the same one the trace collector records.
func TestRoundAccountingMatchesCollector(t *testing.T) {
	t.Parallel()
	rec := &statsRecorder{}
	var col trace.Collector
	net := New(Config{Observer: rec, Collector: &col})
	a := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("x")) })
	b := newRecorder(2, func(env *RoundEnv) { env.Send(1, body("y")) })
	for _, p := range []*recorder{a, b} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	if len(rec.accts) != 1 {
		t.Fatalf("observer saw %d rounds, want 1", len(rec.accts))
	}
	acct := rec.accts[0]
	if rep.Broadcasts != acct.Broadcasts || rep.Unicasts != acct.Unicasts {
		t.Errorf("collector split %d/%d, observer split %d/%d",
			rep.Broadcasts, rep.Unicasts, acct.Broadcasts, acct.Unicasts)
	}
	if rep.Sends != acct.Broadcasts+acct.Unicasts {
		t.Errorf("Sends = %d, want %d", rep.Sends, acct.Broadcasts+acct.Unicasts)
	}
}
