package simnet

import "uba/internal/simnet/sched"

// forceWorkers equips n with a private w-worker scheduler and a
// matching worker cap regardless of GOMAXPROCS, so tests exercise real
// sharded routing and pooled stepping on any host (CI race machines
// included). Callers must Close the network, which also closes the
// private scheduler.
func (n *Network) forceWorkers(w int) {
	n.cfg.Concurrent = true
	n.cfg.Workers = w
	n.sched = sched.New(w)
	n.ownsSched = true
}
