package simnet

// forceWorkers equips n with a w-worker pool regardless of GOMAXPROCS,
// so tests exercise real sharded routing and pooled stepping on any
// host (CI race machines included). Callers must Close the network.
func (n *Network) forceWorkers(w int) {
	n.cfg.Concurrent = true
	n.pool = newWorkerPool(w)
}
