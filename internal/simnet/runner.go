package simnet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is the persistent goroutine pool behind the concurrent
// runner. It replaces the old goroutine-per-node-per-round scheme: the
// workers are spawned once (on the first concurrent round) and then
// parked on a channel between rounds, so a phase costs W channel sends
// and one barrier wait instead of n goroutine spawns.
//
// The pool runs both halves of a round — the step phase and the
// routing/delivery phase — as separate barriered dispatches:
//
//   - Step: workers claim node indices from the shared atomic counter
//     and write each node's sends into a per-node slot of a shared
//     results slice. Which worker steps which node varies run to run,
//     but the merge (stepConcurrent) reads the slots in node order, so
//     the routed send stream is byte-identical to the sequential
//     runner's.
//   - Route: workers claim shard indices; each shard is a contiguous
//     receiver range whose inboxes, contact sets, tallies and event
//     buffer are written only by the claiming worker (route.go). The
//     post-barrier merge reads shards in index — i.e. receiver — order,
//     so traces and accounting are independent of worker scheduling.
type workerPool struct {
	tasks   chan poolTask
	workers int
	next    atomic.Int64   // node/shard index dispenser, reset each phase
	wg      sync.WaitGroup // phase barrier
}

// poolPhase selects which half of a round a dispatched task runs.
type poolPhase uint8

const (
	phaseStep poolPhase = iota
	phaseRoute
)

// poolTask is one phase's work order. It is passed by value through the
// channel and dropped by each worker before it parks again, so parked
// workers pin the pool but not the Network — which lets the Network's
// finalizer release an abandoned pool (see startPool).
type poolTask struct {
	net   *Network
	phase poolPhase
	live  []*procState // step phase
	res   []stepResult // step phase
}

// startPool spawns the worker pool and arranges for its goroutines to be
// released when the Network is garbage collected, so callers that drop a
// concurrent Network without calling Close do not leak workers.
//
//lint:coldpath pool construction runs once per Network, on the first concurrent round, behind the pool == nil guard
func (n *Network) startPool() {
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if len(n.live) < workers {
			workers = len(n.live)
		}
	}
	if workers < 1 {
		workers = 1
	}
	n.pool = newWorkerPool(workers)
	runtime.SetFinalizer(n, func(nn *Network) { nn.pool.stop() })
}

// Close releases the concurrent runner's worker goroutines. It is
// optional — an abandoned Network's pool is released by a finalizer —
// but deterministic: call it when the network's lifetime is known, e.g.
// after a protocol run completes. The Network must not run further
// rounds after Close.
func (n *Network) Close() {
	if n.pool == nil {
		return
	}
	runtime.SetFinalizer(n, nil)
	n.pool.stop()
	n.pool = nil
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		tasks:   make(chan poolTask, workers),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// work is one worker's loop: park on the task channel, drain the index
// dispenser for the dispatched phase, hit the barrier, park again.
//
//lint:noalloc the worker loop runs both phase bodies over recycled per-node and per-shard state
func (p *workerPool) work() {
	for t := range p.tasks {
		switch t.phase {
		case phaseStep:
			for {
				i := int(p.next.Add(1)) - 1
				if i >= len(t.live) {
					break
				}
				t.res[i] = t.net.stepOne(t.live[i])
			}
		case phaseRoute:
			shards := t.net.shards
			for {
				s := int(p.next.Add(1)) - 1
				if s >= len(shards) {
					break
				}
				t.net.routeShardDeliver(&shards[s])
			}
		}
		p.wg.Done()
		// Drop the Network reference before parking so a parked worker
		// keeps only the pool alive, not the last round's Network.
		t = poolTask{}
		_ = t
	}
}

// dispatch runs one barriered phase: every worker receives the task,
// drains the shared index dispenser, and dispatch returns once all
// workers are done.
//
//lint:noalloc a phase dispatch costs W channel sends of a by-value task and one barrier wait
func (p *workerPool) dispatch(t poolTask) {
	p.next.Store(0)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.tasks <- t
	}
	p.wg.Wait()
}

// runRound steps every process in live on the pool and returns once all
// results are written (the step barrier).
//
//lint:noalloc the step dispatch passes a by-value task over existing buffers
func (p *workerPool) runRound(n *Network, live []*procState, res []stepResult) {
	p.dispatch(poolTask{net: n, phase: phaseStep, live: live, res: res})
}

// runRoute delivers every shard in n.shards on the pool and returns
// once all inboxes, tallies and event buffers are written (the route
// barrier).
//
//lint:noalloc the route dispatch passes a by-value task over existing buffers
func (p *workerPool) runRoute(n *Network) {
	p.dispatch(poolTask{net: n, phase: phaseRoute})
}

// stop terminates the workers. Idempotence is the caller's concern
// (Close and the finalizer both nil/clear their references).
func (p *workerPool) stop() {
	close(p.tasks)
}
