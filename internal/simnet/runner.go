package simnet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is the persistent goroutine pool behind the concurrent
// runner. It replaces the old goroutine-per-node-per-round scheme: the
// workers are spawned once (on the first concurrent round) and then
// parked on a channel between rounds, so a round costs W channel sends
// and one barrier wait instead of n goroutine spawns.
//
// Determinism: workers claim node indices from a shared atomic counter
// and write each node's sends into a per-node slot of a shared results
// slice. Which worker steps which node varies run to run, but the merge
// (stepConcurrent) reads the slots in node order, so the routed sends —
// and therefore the whole execution — are byte-identical to the
// sequential runner's.
type workerPool struct {
	tasks   chan poolRound
	workers int
	next    atomic.Int64   // node-index dispenser, reset each round
	wg      sync.WaitGroup // round barrier
}

// poolRound is one round's work order. It is passed by value through the
// channel and dropped by each worker before it parks again, so parked
// workers pin the pool but not the Network — which lets the Network's
// finalizer release an abandoned pool (see startPool).
type poolRound struct {
	net  *Network
	live []*procState
	res  []stepResult
}

// startPool spawns the worker pool and arranges for its goroutines to be
// released when the Network is garbage collected, so callers that drop a
// concurrent Network without calling Close do not leak workers.
func (n *Network) startPool() {
	workers := runtime.GOMAXPROCS(0)
	if len(n.live) < workers {
		workers = len(n.live)
	}
	if workers < 1 {
		workers = 1
	}
	n.pool = newWorkerPool(workers)
	runtime.SetFinalizer(n, func(nn *Network) { nn.pool.stop() })
}

// Close releases the concurrent runner's worker goroutines. It is
// optional — an abandoned Network's pool is released by a finalizer —
// but deterministic: call it when the network's lifetime is known, e.g.
// after a protocol run completes. The Network must not run further
// rounds after Close.
func (n *Network) Close() {
	if n.pool == nil {
		return
	}
	runtime.SetFinalizer(n, nil)
	n.pool.stop()
	n.pool = nil
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		tasks:   make(chan poolRound, workers),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

func (p *workerPool) work() {
	for r := range p.tasks {
		for {
			i := int(p.next.Add(1)) - 1
			if i >= len(r.live) {
				break
			}
			sends, err := r.net.stepOne(r.live[i])
			r.res[i] = stepResult{sends: sends, err: err}
		}
		p.wg.Done()
		// Drop the Network reference before parking so a parked worker
		// keeps only the pool alive, not the last round's Network.
		r = poolRound{}
		_ = r
	}
}

// runRound steps every process in live on the pool and returns once all
// results are written (the per-round barrier).
func (p *workerPool) runRound(n *Network, live []*procState, res []stepResult) {
	p.next.Store(0)
	p.wg.Add(p.workers)
	r := poolRound{net: n, live: live, res: res}
	for i := 0; i < p.workers; i++ {
		p.tasks <- r
	}
	p.wg.Wait()
}

// stop terminates the workers. Idempotence is the caller's concern
// (Close and the finalizer both nil/clear their references).
func (p *workerPool) stop() {
	close(p.tasks)
}
