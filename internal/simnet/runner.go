package simnet

import (
	"runtime"

	"uba/internal/simnet/sched"
)

// This file is the concurrent runner's dispatch layer: how a Network's
// two round phases — step-by-node and route-by-shard — become indexed
// batches on the process-wide bounded scheduler (internal/simnet/sched).
//
// A Network no longer owns worker goroutines. It binds to a scheduler
// on its first concurrent dispatch (the shared sched.Default unless a
// test injected a private one) and submits each phase as one barriered
// dispatch, reusing a single Phase record and a single phase-tagged
// poolTask so the steady-state round performs no allocation. The
// Config.Workers knob is a cap on how many shared workers may drain
// this network's phase at once, not a reservation: a campaign running
// many simulations keeps total parallelism at the scheduler's budget
// no matter how many networks are in flight.
//
// Determinism is unchanged from the private-pool runner: which worker
// runs which index varies run to run, but the step merge reads result
// slots in node order and the route merge reads shards in receiver
// order, so transcripts and accounting are independent of scheduling.

// poolPhase selects which half of a round a dispatched task runs.
type poolPhase uint8

const (
	phaseStep poolPhase = iota
	phaseRoute
)

// poolTask is one phase's work order: the Network's sched.Task. It is
// embedded in the Network and re-tagged per dispatch, so handing it to
// the scheduler costs a field rewrite, never an allocation.
type poolTask struct {
	net   *Network
	phase poolPhase
	live  []*procState // step phase
	res   []stepResult // step phase
}

// Run executes one index of the dispatched phase: a node step into its
// result slot, or a shard delivery. Indices are disjoint per call, and
// both bodies write only index-owned state, so concurrent Run calls
// never conflict.
//
//lint:noalloc both phase bodies run over recycled per-node and per-shard state
//lint:nonblock phase bodies run to the scheduler's dispatch barrier; a blocking index would stall every job sharing the budget
func (t *poolTask) Run(i int) {
	switch t.phase {
	case phaseStep:
		t.res[i] = t.net.stepOne(t.live[i])
	case phaseRoute:
		t.net.routeShardDeliver(&t.net.shards[i])
	}
}

// scheduler returns the scheduler this network dispatches on, binding
// to the process-wide default on first use. Tests inject a private
// scheduler (with ownsSched set) to force real parallelism on any
// host; everything else shares one budget.
func (n *Network) scheduler() *sched.Scheduler {
	if n.sched == nil {
		//lint:coldpath binding to the shared scheduler runs once per Network, on its first concurrent dispatch
		n.sched = sched.Default()
	}
	return n.sched
}

// workersCap is the network's concurrency cap: how many goroutines may
// drain one of its phase dispatches at once. Config.Workers when
// positive; otherwise GOMAXPROCS capped at the live process count.
//
//lint:noalloc pure arithmetic over the config, computed per dispatch
func (n *Network) workersCap() int {
	w := n.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if len(n.live) < w {
			w = len(n.live)
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runStep dispatches the step phase: every process in live is stepped,
// its result written to the node's slot of res, and runStep returns at
// the phase barrier, after which the caller merges the slots in node
// order.
//
//lint:noalloc the step dispatch re-tags the embedded task and reuses the network's Phase record
func (n *Network) runStep(live []*procState, res []stepResult) {
	n.task = poolTask{net: n, phase: phaseStep, live: live, res: res}
	n.scheduler().Run(&n.phase, &n.task, len(live), n.workersCap())
}

// runRouteShards dispatches the delivery phase over n.shards[:nshards]
// and returns at the phase barrier, after which the caller merges the
// shards in receiver order.
//
//lint:noalloc the route dispatch re-tags the embedded task and reuses the network's Phase record
func (n *Network) runRouteShards(nshards int) {
	n.task = poolTask{net: n, phase: phaseRoute}
	n.scheduler().Run(&n.phase, &n.task, nshards, n.workersCap())
}

// Close retires the network: a privately owned scheduler (test hook) is
// closed, and the round-scoped scratch buffers are cleared and returned
// to the process-wide recycling pool so the next Network — a later
// campaign cell, often on another goroutine — starts at this one's
// high-water mark instead of re-growing from nil. Close is idempotent;
// the Network must not run further rounds after it. It is optional
// (an abandoned Network is ordinary garbage — no goroutines or
// finalizers are attached), but campaigns that run thousands of cells
// want the buffer recycling.
func (n *Network) Close() {
	if n.closed {
		return
	}
	n.closed = true
	if n.ownsSched && n.sched != nil {
		n.sched.Close()
	}
	n.sched = nil
	n.releaseScratch()
}
