package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// countTask records per-index hit counts and the peak number of
// concurrent Run bodies, to check exactly-once dispatch and cap
// enforcement.
type countTask struct {
	hits    []atomic.Int32
	active  atomic.Int32
	peak    atomic.Int32
	onRun   func(i int)
	spinFor int
}

func (t *countTask) Run(i int) {
	a := t.active.Add(1)
	for {
		p := t.peak.Load()
		if a <= p || t.peak.CompareAndSwap(p, a) {
			break
		}
	}
	if t.onRun != nil {
		t.onRun(i)
	}
	// Busy-spin briefly so concurrent drainers overlap even on hosts
	// where each index is otherwise sub-microsecond.
	x := 0
	for k := 0; k < t.spinFor; k++ {
		x += k
	}
	_ = x
	t.hits[i].Add(1)
	t.active.Add(-1)
}

func newCountTask(n int) *countTask {
	return &countTask{hits: make([]atomic.Int32, n), spinFor: 200}
}

func (t *countTask) checkExactlyOnce(tb testing.TB) {
	tb.Helper()
	for i := range t.hits {
		if got := t.hits[i].Load(); got != 1 {
			tb.Fatalf("index %d ran %d times, want exactly once", i, got)
		}
	}
}

func TestRunDispatchesEveryIndexExactlyOnce(t *testing.T) {
	s := New(4)
	defer s.Close()
	var p Phase
	for round := 0; round < 50; round++ {
		ct := newCountTask(97)
		s.Run(&p, ct, len(ct.hits), 4)
		ct.checkExactlyOnce(t)
	}
}

func TestRunSerialFastPaths(t *testing.T) {
	cases := []struct {
		name   string
		budget int
		n, cap int
	}{
		{"cap1", 4, 64, 1},
		{"capZero", 4, 64, 0},
		{"n1", 4, 1, 8},
		{"zeroBudget", 0, 64, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.budget)
			defer s.Close()
			ct := newCountTask(tc.n)
			var p Phase
			s.Run(&p, ct, tc.n, tc.cap)
			ct.checkExactlyOnce(t)
			if tc.cap <= 1 || tc.budget == 0 || tc.n == 1 {
				if peak := ct.peak.Load(); peak != 1 {
					t.Fatalf("serial fast path peaked at %d concurrent bodies, want 1", peak)
				}
			}
		})
	}
}

func TestRunZeroIndicesIsNoOp(t *testing.T) {
	s := New(2)
	defer s.Close()
	ct := newCountTask(1)
	var p Phase
	s.Run(&p, ct, 0, 4)
	if got := ct.hits[0].Load(); got != 0 {
		t.Fatalf("n=0 dispatch ran an index %d times", got)
	}
}

// TestCapBoundsConcurrency checks that no more than cap goroutines are
// ever inside Run bodies of one phase, even with budget headroom.
func TestCapBoundsConcurrency(t *testing.T) {
	s := New(8)
	defer s.Close()
	var p Phase
	for round := 0; round < 20; round++ {
		ct := newCountTask(256)
		ct.spinFor = 2000
		s.Run(&p, ct, len(ct.hits), 3)
		ct.checkExactlyOnce(t)
		if peak := ct.peak.Load(); peak > 3 {
			t.Fatalf("phase with cap=3 peaked at %d concurrent bodies", peak)
		}
	}
}

// TestConcurrentSubmitters runs many goroutines each dispatching many
// phases through one scheduler — the campaign shape — and checks every
// index of every dispatch runs exactly once.
func TestConcurrentSubmitters(t *testing.T) {
	s := New(4)
	defer s.Close()
	const jobs = 8
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p Phase
			for round := 0; round < 30; round++ {
				ct := newCountTask(64)
				s.Run(&p, ct, len(ct.hits), 4)
				ct.checkExactlyOnce(t)
			}
		}()
	}
	wg.Wait()
}

// nestedTask dispatches an inner phase from inside an outer Run body —
// the campaign-cell-runs-a-concurrent-simulation shape. Progress must
// not depend on free workers, because the outer phase may have
// saturated the budget.
type nestedTask struct {
	s     *Scheduler
	inner []*countTask
}

func (t *nestedTask) Run(i int) {
	var p Phase
	t.s.Run(&p, t.inner[i], len(t.inner[i].hits), 4)
}

func TestReentrantDispatch(t *testing.T) {
	s := New(2)
	defer s.Close()
	const outer = 6
	nt := &nestedTask{s: s}
	for i := 0; i < outer; i++ {
		nt.inner = append(nt.inner, newCountTask(40))
	}
	var p Phase
	s.Run(&p, nt, outer, outer)
	for i, ct := range nt.inner {
		for j := range ct.hits {
			if got := ct.hits[j].Load(); got != 1 {
				t.Fatalf("inner phase %d index %d ran %d times", i, j, got)
			}
		}
	}
}

// TestPhaseReuseQuiesces hammers one Phase record with back-to-back
// dispatches of different lengths; under the race detector this is the
// check that the quiescence barrier orders a worker's last reads
// before the next dispatch's writes.
func TestPhaseReuseQuiesces(t *testing.T) {
	s := New(4)
	defer s.Close()
	var p Phase
	for round := 0; round < 200; round++ {
		n := 1 + (round*7)%50
		ct := newCountTask(n)
		ct.spinFor = 50
		s.Run(&p, ct, n, 4)
		ct.checkExactlyOnce(t)
	}
}

func TestCloseWhileDispatching(t *testing.T) {
	s := New(3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var p Phase
		for round := 0; round < 50; round++ {
			ct := newCountTask(64)
			s.Run(&p, ct, len(ct.hits), 4)
			ct.checkExactlyOnce(t)
		}
	}()
	s.Close()
	<-done
	// Dispatching after Close still completes (submitter self-drains).
	ct := newCountTask(32)
	var p Phase
	s.Run(&p, ct, len(ct.hits), 4)
	ct.checkExactlyOnce(t)
}

func TestDefaultBudgetMatchesGOMAXPROCS(t *testing.T) {
	d := Default()
	if d.Budget() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default budget = %d, want GOMAXPROCS = %d", d.Budget(), runtime.GOMAXPROCS(0))
	}
	if Default() != d {
		t.Fatal("Default is not a singleton")
	}
}

func TestSetDefaultBudget(t *testing.T) {
	orig := Default().Budget()
	defer SetDefaultBudget(orig)
	s2 := SetDefaultBudget(2)
	if s2.Budget() != 2 {
		t.Fatalf("SetDefaultBudget(2).Budget() = %d", s2.Budget())
	}
	if Default() != s2 {
		t.Fatal("Default does not return the replaced scheduler")
	}
	if SetDefaultBudget(2) != s2 {
		t.Fatal("SetDefaultBudget with the current budget should be a no-op")
	}
	ct := newCountTask(64)
	var p Phase
	s2.Run(&p, ct, len(ct.hits), 4)
	ct.checkExactlyOnce(t)
}

// TestPickRotatesAcrossPhases pins the fairness mechanism directly:
// with several eligible phases active, successive picks hand out
// different phases in rotation instead of re-serving the first one.
// Driven with a zero-worker scheduler so nothing races the cursor.
func TestPickRotatesAcrossPhases(t *testing.T) {
	s := New(0)
	defer s.Close()
	tasks := make([]*countTask, 3)
	phases := make([]*Phase, 3)
	for i := range phases {
		tasks[i] = newCountTask(8)
		phases[i] = &Phase{task: tasks[i], n: 8, cap: 8}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phases = append(s.phases, phases...)
	order := make([]*Phase, 0, 6)
	for k := 0; k < 6; k++ {
		p := s.pick()
		if p == nil {
			t.Fatalf("pick %d returned nil with eligible phases active", k)
		}
		order = append(order, p)
	}
	for k, p := range order {
		if want := phases[k%3]; p != want {
			t.Fatalf("pick %d returned phase %v, want round-robin order", k, p)
		}
	}
	// A phase at its attachment cap is skipped, not re-served.
	phases[1].attached = int(phases[1].cap) - 1
	for k := 0; k < 4; k++ {
		if p := s.pick(); p == phases[1] {
			t.Fatal("pick returned a phase with no attachment headroom")
		}
	}
}

// TestSteadyStateDispatchDoesNotAllocate pins the recycled-Phase
// contract: after warmup, a dispatch allocates nothing.
func TestSteadyStateDispatchDoesNotAllocate(t *testing.T) {
	s := New(2)
	defer s.Close()
	ct := newCountTask(64)
	ct.spinFor = 0
	var p Phase
	s.Run(&p, ct, len(ct.hits), 2) // warm: fin channel, phases list growth
	for i := range ct.hits {
		ct.hits[i].Store(0)
	}
	avg := testing.AllocsPerRun(100, func() {
		s.Run(&p, ct, len(ct.hits), 2)
	})
	if avg != 0 {
		t.Fatalf("steady-state dispatch allocates %.1f allocs/op, want 0", avg)
	}
}
