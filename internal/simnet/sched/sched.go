// Package sched is the process-wide bounded scheduler behind every
// concurrent simulation: one worker budget, shared by all of them.
//
// The engine used to give each concurrent Network a private goroutine
// pool, which made the per-simulation knob a *reservation*: a campaign
// running J simulations with W workers each put J×W goroutines on the
// machine regardless of how many cores it has. This package inverts
// that. A Scheduler owns a fixed budget of worker goroutines (normally
// one per GOMAXPROCS, spawned once for the whole process) and every
// concurrent simulation submits its barriered phases — step-by-node,
// route-by-shard, campaign-cell-by-index — to the same pool. The
// per-job worker count is now a *cap* on how many of the shared
// workers may drain that job's phase at once, so J jobs × W workers
// never oversubscribes: the running worker count is bounded by the
// budget plus the submitting goroutines (which always help drain their
// own phase).
//
// # Dispatch model
//
// A phase is an indexed batch: n independent indices, each passed to
// Task.Run exactly once. Workers (and the submitter) claim indices
// from a shared atomic dispenser, so which goroutine runs which index
// varies run to run — every caller must therefore merge results in
// index order, never in completion order. That discipline is what
// makes the whole engine schedule-independent: transcripts, reports
// and repros are byte-identical for any budget, any cap, and any mix
// of concurrent jobs (see the determinism argument in DESIGN.md §10).
//
// Fairness is round-robin at phase granularity: a free worker picks
// its next phase starting from a rotating cursor and then drains it to
// exhaustion. Phases are round-sized (one step or route barrier), so a
// job can monopolize an attached worker for at most one round of work
// before the cursor hands it to the next job. A phase's cap bounds how
// many workers attach to it, leaving headroom for later arrivals.
//
// # Blocking and reentrancy
//
// Task bodies must not block (the simnet bodies are //lint:nonblock
// certified): a blocked worker is deducted from every job's
// throughput, and a task that blocked on its own phase's barrier
// would deadlock. Dispatching from inside a Run body is allowed — the
// nested submitter drains its own phase, so progress never depends on
// free workers — which is how campaign cells that themselves run
// concurrent simulations compose.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one phase's work order: an indexed batch whose Run method is
// invoked exactly once for every index in [0, n). Run must be safe for
// concurrent calls with distinct indices and must not block (a parked
// worker stalls every job sharing the budget; a task blocking on its
// own phase barrier deadlocks).
type Task interface {
	Run(i int)
}

// Phase is the reusable dispatch record a job threads through Run
// calls: it holds the barrier state for one in-flight dispatch and is
// recycled across dispatches so the steady-state hot path performs no
// allocation. The zero value is ready. A Phase must not be shared by
// two concurrent dispatches (a Network reuses one Phase for its step
// and route halves, which never overlap).
type Phase struct {
	task Task
	n    int32
	cap  int32
	next atomic.Int32 // index dispenser
	done atomic.Int32 // completed indices
	// attached counts goroutines currently draining this phase
	// (workers only, not the submitter); guarded by the scheduler's
	// mutex. The submitter waits for it to reach zero before reusing
	// the record, so a worker parked mid-pick can never observe the
	// next dispatch's half-written fields.
	attached int
	// fin is the completion token: 1-buffered, sent exactly once per
	// dispatch by whichever goroutine finishes the last index, received
	// exactly once by the submitter. Allocated on first use, reused
	// forever after.
	fin chan struct{}
}

// Scheduler multiplexes indexed phases from many concurrent jobs over
// one bounded set of worker goroutines.
type Scheduler struct {
	budget int

	mu     sync.Mutex
	cond   *sync.Cond
	phases []*Phase // active dispatches with possibly unclaimed work
	cursor int      // round-robin pick position
	closed bool
}

// New returns a scheduler with the given worker budget. A budget of
// zero or less spawns no workers: every dispatch is drained entirely
// by its submitting goroutine — the degenerate mode is still correct,
// just serial. Most callers want Default instead; private schedulers
// are for tests that need an exact, isolated worker count.
func New(budget int) *Scheduler {
	if budget < 0 {
		budget = 0
	}
	s := &Scheduler{budget: budget}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < budget; w++ {
		go s.worker()
	}
	return s
}

// Budget returns the scheduler's worker-goroutine budget.
func (s *Scheduler) Budget() int { return s.budget }

// Close releases the scheduler's workers once the active phases drain.
// In-flight and even later dispatches stay correct — their submitters
// drain them alone — so Close is safe to call while jobs are running;
// it only retires the shared capacity. The process-wide Default
// scheduler is never closed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// defaultSched is the process-wide scheduler, created on first use
// with one worker per GOMAXPROCS.
var (
	defaultMu    sync.Mutex
	defaultSched *Scheduler
)

// Default returns the process-wide scheduler, creating it on first use
// with a budget of GOMAXPROCS workers — the whole point: every
// concurrent simulation in the process shares this one pool unless it
// explicitly constructs its own.
func Default() *Scheduler {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSched == nil {
		defaultSched = New(runtime.GOMAXPROCS(0))
	}
	return defaultSched
}

// SetDefaultBudget replaces the process-wide scheduler with one of the
// given budget — the CLI hook behind the -jobs flags, so an operator
// can bound total simulation parallelism below (or above) GOMAXPROCS.
// Jobs that already captured the previous default keep using it; its
// workers are released once their phases drain. Returns the new
// default.
func SetDefaultBudget(budget int) *Scheduler {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSched != nil {
		if defaultSched.budget == budget {
			return defaultSched
		}
		defaultSched.Close()
	}
	defaultSched = New(budget)
	return defaultSched
}

// Run dispatches one phase — n indices of t, at most cap concurrent
// drainers including the calling goroutine — and returns once every
// index has completed (the phase barrier). cap <= 1, n <= 1, or a
// zero-budget scheduler short-circuits to a serial inline loop with no
// coordination at all, which is also why per-job worker caps are caps
// and not reservations: a cap-1 job costs the shared pool nothing.
//
// The submitter always drains alongside the workers, so Run completes
// even when every budgeted worker is busy with other jobs — admission
// can delay a phase, never starve it.
//
//lint:noalloc the dispatch hot path reuses the caller's Phase record; enqueue appends into the scheduler's recycled active list and the completion token channel is made once per Phase
func (s *Scheduler) Run(p *Phase, t Task, n, cap int) {
	if n <= 0 {
		return
	}
	if cap > n {
		cap = n
	}
	if cap <= 1 || s.budget == 0 || n == 1 {
		for i := 0; i < n; i++ {
			t.Run(i)
		}
		return
	}
	p.task = t
	p.n = int32(n)
	p.cap = int32(cap)
	p.next.Store(0)
	p.done.Store(0)
	if p.fin == nil {
		//lint:coldpath the completion token channel is allocated once per Phase and reused by every later dispatch
		p.fin = make(chan struct{}, 1)
	}

	s.mu.Lock()
	s.phases = append(s.phases, p)
	s.mu.Unlock()
	s.cond.Broadcast()

	p.drain()
	// The last finisher — possibly this goroutine — sent the token.
	<-p.fin

	// Retire the phase: out of the active list so no new worker can
	// pick it, then wait out workers already attached (they detach
	// under the lock, which orders their final reads of p's fields
	// before any reuse by the next dispatch).
	s.mu.Lock()
	for i, q := range s.phases {
		if q == p {
			last := len(s.phases) - 1
			s.phases[i] = s.phases[last]
			s.phases[last] = nil
			s.phases = s.phases[:last]
			break
		}
	}
	for p.attached > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	p.task = nil
}

// drain claims indices until the dispenser is exhausted, running each,
// and sends the completion token if it finishes the last one.
//
//lint:noalloc the claim loop is atomics, a dynamic Run call over recycled state, and one buffered channel send per phase
func (p *Phase) drain() {
	n := p.n
	for {
		i := p.next.Add(1) - 1
		if i >= n {
			return
		}
		p.task.Run(int(i))
		if p.done.Add(1) == n {
			p.fin <- struct{}{}
		}
	}
}

// pick selects the next phase with unclaimed work and attachment
// headroom, round-robin from the cursor so concurrent jobs interleave.
// Caller holds s.mu.
//
//lint:noalloc the selection scan walks the recycled active list
func (s *Scheduler) pick() *Phase {
	np := len(s.phases)
	for k := 0; k < np; k++ {
		p := s.phases[(s.cursor+k)%np]
		if p.next.Load() < p.n && p.attached < int(p.cap)-1 {
			// cap counts the submitter, which is always draining; the
			// workers get the remaining cap-1 slots.
			s.cursor = (s.cursor + k + 1) % np
			return p
		}
	}
	return nil
}

// worker is one budgeted goroutine: pick a phase, help drain it,
// detach, repeat; park when no phase is eligible.
//
//lint:noalloc the worker loop alternates the noalloc pick/drain pair with condition-variable parking
func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		p := s.pick()
		if p == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		p.attached++
		s.mu.Unlock()
		p.drain()
		s.mu.Lock()
		p.attached--
		if p.attached == 0 {
			// The submitter may be waiting in Run for the phase to
			// quiesce before reusing the record.
			s.cond.Broadcast()
		}
	}
}
