package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"uba/internal/ids"
	"uba/internal/simnet/sched"
	"uba/internal/trace"
	"uba/internal/wire"
)

// This file tests the round-scheduled fault-injection layer (fault.go):
// plan validation, the semantics of every event kind, the determinism
// contract under a non-trivial plan (byte-identical transcripts across
// worker counts and concurrent jobs), and the quota × crash interplay.

// runFaultWorkload runs the sparsemix workload under the given plan and
// captures the observable state. workers == 0 selects the sequential
// runner.
func runFaultWorkload(t *testing.T, plan *FaultPlan, seed int64, workers, rounds int) determinismOutcome {
	t.Helper()
	log := trace.NewEventLog(500_000)
	col := &trace.Collector{}
	net := New(Config{MaxRounds: rounds + 1, EventLog: log, Collector: col, FaultPlan: plan})
	if workers > 0 {
		net.forceWorkers(workers)
		defer net.Close()
	}
	rng := rand.New(rand.NewSource(seed))
	nodeIDs := ids.Sparse(rng, 12)
	out := determinismOutcome{logs: make(map[ids.ID][]string)}
	procs := make([]*sparseMix, 0, len(nodeIDs))
	for i, id := range nodeIDs {
		p := &sparseMix{id: id, idx: i, peers: nodeIDs}
		procs = append(procs, p)
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, rounds)
	for _, p := range procs {
		out.logs[p.id] = p.log
	}
	if log.Dropped() > 0 {
		t.Fatalf("transcript truncated (%d dropped)", log.Dropped())
	}
	out.events = log.Events()
	out.report = col.Report()
	return out
}

// faultPlanIDs returns the deterministic id layout runFaultWorkload uses.
func faultPlanIDs(seed int64) []ids.ID {
	return ids.Sparse(rand.New(rand.NewSource(seed)), 12)
}

// nontrivialPlan exercises every fault kind at once: a quorum-splitting
// partition with churn inside it, link loss/duplication/corruption,
// within-round reordering, a late joiner, and a quota change.
func nontrivialPlan(nodeIDs []ids.ID) *FaultPlan {
	raw := make([]uint64, len(nodeIDs))
	for i, id := range nodeIDs {
		raw[i] = uint64(id)
	}
	return &FaultPlan{
		Seed: 99,
		Events: []FaultEvent{
			{Round: 2, Kind: FaultJoin, Node: raw[11]},
			{Round: 2, Kind: FaultPartition, Groups: [][]uint64{raw[:6], raw[6:]}},
			{Round: 2, Kind: FaultDrop, Rate: 0.2},
			{Round: 3, Kind: FaultReorder, Rate: 0.5},
			{Round: 3, Kind: FaultCrash, Node: raw[2]},
			{Round: 4, Kind: FaultCorrupt, From: raw[1], Rate: 0.5},
			{Round: 5, Kind: FaultHeal},
			{Round: 5, Kind: FaultDuplicate, Node: raw[4], Rate: 0.4},
			{Round: 6, Kind: FaultRecover, Node: raw[2]},
			{Round: 6, Kind: FaultQuota, SendQuota: 3},
			{Round: 8, Kind: FaultDrop, Rate: 0},
		},
	}
}

// TestFaultPlanDeterminism asserts the acceptance-criteria contract:
// with a non-trivial fault plan active, the transcript, the traffic
// report and every process's observed deliveries are byte-identical
// across worker counts {0,1,2,3,5}, and stable across repeats.
func TestFaultPlanDeterminism(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := nontrivialPlan(faultPlanIDs(seed))
			base := runFaultWorkload(t, plan, seed, 0, 10)
			if len(base.events) == 0 {
				t.Fatal("fault run recorded no events; comparison is vacuous")
			}
			var faults int
			for _, e := range base.events {
				switch e.Kind {
				case trace.KindPartition, trace.KindHeal, trace.KindLinkDrop,
					trace.KindLinkDup, trace.KindLinkCorrupt, trace.KindLinkReorder,
					trace.KindNodeJoined, trace.KindNodeRecovered, trace.KindQuotaChange:
					faults++
				}
			}
			if faults < 10 {
				t.Fatalf("plan injected only %d fault events; workload too tame to certify determinism", faults)
			}
			for _, workers := range []int{1, 2, 3, 5} {
				got := runFaultWorkload(t, plan, seed, workers, 10)
				diffOutcomes(t, fmt.Sprintf("workers=%d", workers), base, got)
			}
			again := runFaultWorkload(t, plan, seed, 3, 10)
			diffOutcomes(t, "workers=3 repeat", base, again)
		})
	}
}

// TestFaultPlanJobsDeterminism re-runs the non-trivial plan as several
// concurrent jobs multiplexed over one bounded scheduler (the campaign
// shape) and asserts every job reproduces the sequential transcript,
// for scheduler budgets {1, 4}.
func TestFaultPlanJobsDeterminism(t *testing.T) {
	t.Parallel()
	const seed = int64(1)
	plan := nontrivialPlan(faultPlanIDs(seed))
	base := runFaultWorkload(t, plan, seed, 0, 10)
	for _, budget := range []int{1, 4} {
		jobs := faultJobs{
			t:    t,
			plan: plan,
			seed: seed,
			outs: make([]determinismOutcome, 4),
		}
		s := sched.New(budget)
		var phase sched.Phase
		s.Run(&phase, &jobs, len(jobs.outs), len(jobs.outs))
		s.Close()
		for j, got := range jobs.outs {
			diffOutcomes(t, fmt.Sprintf("budget=%d job=%d", budget, j), base, got)
		}
	}
}

// faultJobs runs one fault workload per task index, concurrently.
type faultJobs struct {
	t    *testing.T
	plan *FaultPlan
	seed int64
	outs []determinismOutcome
}

func (f *faultJobs) Run(i int) {
	f.outs[i] = runFaultWorkload(f.t, f.plan, f.seed, 0, 10)
}

// TestFaultPlanPresenceIsFree asserts that attaching a plan whose rules
// are never live does not change the execution: the transcript, report
// and delivery logs match a nil-plan run byte for byte.
func TestFaultPlanPresenceIsFree(t *testing.T) {
	t.Parallel()
	base := runFaultWorkload(t, nil, 3, 0, 8)
	got := runFaultWorkload(t, &FaultPlan{Seed: 42}, 3, 0, 8)
	diffOutcomes(t, "empty plan", base, got)
}

// TestFaultFilterDemotionIsInvisible asserts the broadcast-demotion
// path is semantically transparent: a plan whose only live rule has
// rate 0 forces the filter (and the dense per-receiver demotion) on
// every round, yet deliveries, inbox order, Broadcast flags, tallies
// and logs all match the nil-plan run. Only the rule-activation event
// itself may differ.
func TestFaultFilterDemotionIsInvisible(t *testing.T) {
	t.Parallel()
	base := runFaultWorkload(t, nil, 5, 0, 8)
	plan := &FaultPlan{Seed: 7, Events: []FaultEvent{{Round: 1, Kind: FaultDrop, Rate: 0}}}
	got := runFaultWorkload(t, plan, 5, 0, 8)
	activations := 0
	filtered := got.events[:0:0]
	for _, e := range got.events {
		if strings.HasPrefix(e.Enc, "rate=") {
			activations++
			continue
		}
		filtered = append(filtered, e)
	}
	if activations != 1 {
		t.Fatalf("expected exactly 1 rule-activation event, saw %d", activations)
	}
	got.events = filtered
	diffOutcomes(t, "rate-0 demotion", base, got)
}

// TestFaultPlanInvalid asserts an invalid plan latches as the network
// error and surfaces from the first RunRound.
func TestFaultPlanInvalid(t *testing.T) {
	t.Parallel()
	for _, plan := range []*FaultPlan{
		{Events: []FaultEvent{{Round: 0, Kind: FaultHeal}}},
		{Events: []FaultEvent{{Round: 1, Kind: "meteor"}}},
		{Events: []FaultEvent{{Round: 1, Kind: FaultDrop, Rate: 1.5}}},
		{Events: []FaultEvent{{Round: 1, Kind: FaultPartition}}},
		{Events: []FaultEvent{{Round: 1, Kind: FaultCrash}}},
	} {
		net := New(Config{MaxRounds: 5, FaultPlan: plan})
		err := net.Add(&ChatterProcess{Ident: 7})
		if err == nil {
			err = net.RunRound()
		}
		if err == nil {
			t.Fatalf("plan %+v: network accepted an invalid plan", plan.Events[0])
		}
		if !strings.Contains(err.Error(), "invalid fault plan") {
			t.Fatalf("plan %+v: error %q does not name the fault plan", plan.Events[0], err)
		}
	}
}

// deliveriesBetween counts transcript deliveries from -> to in the
// given (inclusive) round window.
func deliveriesBetween(events []trace.Event, from, to ids.ID, lo, hi int) int {
	count := 0
	for _, e := range events {
		if e.Round < lo || e.Round > hi || e.To != uint64(to) || e.From != uint64(from) {
			continue
		}
		switch e.Kind {
		case trace.KindPartition, trace.KindHeal, trace.KindLinkDrop,
			trace.KindLinkDup, trace.KindLinkCorrupt, trace.KindLinkReorder,
			trace.KindNodeJoined, trace.KindNodeRecovered, trace.KindQuotaChange,
			trace.KindNodeCrashed, trace.KindQuotaDrop:
			continue
		}
		count++
	}
	return count
}

// chatterNet builds a 4-chatter network with ids {10, 20, 30, 40} and a
// transcript log attached.
func chatterNet(t *testing.T, plan *FaultPlan) (*Network, *trace.EventLog) {
	t.Helper()
	log := trace.NewEventLog(0)
	net := New(Config{MaxRounds: 50, EventLog: log, FaultPlan: plan})
	for _, id := range []ids.ID{10, 20, 30, 40} {
		if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
			t.Fatal(err)
		}
	}
	return net, log
}

// TestPartitionCutsCrossGroupDelivery asserts partition semantics: while
// {10,20} | {30,40} is live, broadcasts cross the cut in neither
// direction; after heal, full fan-out resumes.
func TestPartitionCutsCrossGroupDelivery(t *testing.T) {
	t.Parallel()
	net, log := chatterNet(t, &FaultPlan{
		Seed: 1,
		Events: []FaultEvent{
			{Round: 2, Kind: FaultPartition, Groups: [][]uint64{{10, 20}, {30, 40}}},
			{Round: 4, Kind: FaultHeal},
		},
	})
	mustRounds(t, net, 6)
	events := log.Events()
	// Sends of rounds 2 and 3 (delivered 3 and 4) are cut; sends of
	// round 4 (delivered 5) cross again.
	if got := deliveriesBetween(events, 10, 30, 3, 4); got != 0 {
		t.Fatalf("partition leaked: %d deliveries 10->30 in rounds 3-4", got)
	}
	if got := deliveriesBetween(events, 30, 10, 3, 4); got != 0 {
		t.Fatalf("partition leaked: %d deliveries 30->10 in rounds 3-4", got)
	}
	if got := deliveriesBetween(events, 10, 20, 3, 4); got != 2 {
		t.Fatalf("intra-group traffic disturbed: %d deliveries 10->20 in rounds 3-4, want 2", got)
	}
	if got := deliveriesBetween(events, 10, 30, 5, 6); got != 2 {
		t.Fatalf("heal did not restore delivery: %d deliveries 10->30 in rounds 5-6, want 2", got)
	}
	if got := deliveriesBetween(events, 10, 10, 3, 4); got != 2 {
		t.Fatalf("self-delivery must survive a partition: got %d", got)
	}
}

// TestPartitionIsolatesUnlistedNodes asserts nodes in no group are cut
// off from everyone but themselves.
func TestPartitionIsolatesUnlistedNodes(t *testing.T) {
	t.Parallel()
	net, log := chatterNet(t, &FaultPlan{
		Seed: 1,
		Events: []FaultEvent{
			{Round: 2, Kind: FaultPartition, Groups: [][]uint64{{10, 20, 30}}},
		},
	})
	mustRounds(t, net, 4)
	events := log.Events()
	if got := deliveriesBetween(events, 40, 10, 3, 4); got != 0 {
		t.Fatalf("isolated node still delivered %d messages", got)
	}
	if got := deliveriesBetween(events, 40, 40, 3, 4); got != 2 {
		t.Fatalf("isolated node should still reach itself: got %d", got)
	}
}

// TestFaultCrashRecoverChurn asserts plan crash/recover semantics: the
// node is silent while down, revives with an empty inbox, and the
// transcript shows the churn events.
func TestFaultCrashRecoverChurn(t *testing.T) {
	t.Parallel()
	net, log := chatterNet(t, &FaultPlan{
		Seed: 1,
		Events: []FaultEvent{
			{Round: 3, Kind: FaultCrash, Node: 20},
			{Round: 5, Kind: FaultRecover, Node: 20},
		},
	})
	mustRounds(t, net, 7)
	if net.Crashed(20) {
		t.Fatal("node 20 should have recovered")
	}
	crashes := net.Crashes()
	if len(crashes) != 1 || crashes[0].Node != 20 || crashes[0].Round != 3 {
		t.Fatalf("unexpected crash records: %+v", crashes)
	}
	events := log.Events()
	// Down rounds 3 and 4: no sends, so no deliveries in rounds 4 and
	// 5. Round-2 sends were routed while it was still up (delivery
	// events at round 3 exist), but rounds 3-4 route around it, so
	// nothing lands in rounds 4-5 and the round-5 revival starts with
	// an empty inbox.
	if got := deliveriesBetween(events, 20, 10, 4, 5); got != 0 {
		t.Fatalf("crashed node still sent: %d deliveries", got)
	}
	if got := deliveriesBetween(events, 10, 20, 4, 5); got != 0 {
		t.Fatalf("crashed node still received: %d deliveries", got)
	}
	// Back up from round 5: its round-5 send delivers in round 6.
	if got := deliveriesBetween(events, 20, 10, 6, 7); got != 2 {
		t.Fatalf("recovered node not sending: %d deliveries, want 2", got)
	}
	var kinds []string
	for _, e := range events {
		if e.Kind == trace.KindNodeCrashed || e.Kind == trace.KindNodeRecovered {
			kinds = append(kinds, fmt.Sprintf("%d:%s@%d", e.From, e.Kind, e.Round))
		}
	}
	want := []string{"20:node-crashed@3", "20:node-recovered@5"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("churn events %v, want %v", kinds, want)
	}
}

// TestFaultJoinDormancy asserts a late participant neither steps nor
// receives before its join round, then participates fully.
func TestFaultJoinDormancy(t *testing.T) {
	t.Parallel()
	net, log := chatterNet(t, &FaultPlan{
		Seed:   1,
		Events: []FaultEvent{{Round: 4, Kind: FaultJoin, Node: 30}},
	})
	mustRounds(t, net, 6)
	events := log.Events()
	if got := deliveriesBetween(events, 30, 10, 1, 4); got != 0 {
		t.Fatalf("dormant joiner sent %d messages before its join round", got)
	}
	if got := deliveriesBetween(events, 10, 30, 1, 4); got != 0 {
		t.Fatalf("dormant joiner received %d messages before its join round", got)
	}
	if got := deliveriesBetween(events, 30, 10, 5, 5); got != 1 {
		t.Fatalf("joiner's first round not delivered: got %d, want 1", got)
	}
	joined := false
	for _, e := range events {
		if e.Kind == trace.KindNodeJoined && e.From == 30 && e.Round == 4 {
			joined = true
		}
	}
	if !joined {
		t.Fatal("no node-joined event recorded")
	}
}

// TestFaultQuotaChange asserts a quota event rewrites the live quotas
// and the transcript shows when.
func TestFaultQuotaChange(t *testing.T) {
	t.Parallel()
	log := trace.NewEventLog(0)
	peers := []ids.ID{10, 20}
	net := New(Config{
		MaxRounds: 10, EventLog: log,
		FaultPlan: &FaultPlan{
			Seed:   1,
			Events: []FaultEvent{{Round: 3, Kind: FaultQuota, SendQuota: 2}},
		},
	})
	if err := net.Add(&flood{Ident: 10, Peers: peers, Count: 3}); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(&ChatterProcess{Ident: 20}); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 4)
	var drops, changes int
	for _, e := range log.Events() {
		switch e.Kind {
		case trace.KindQuotaDrop:
			drops++
			if e.Round < 3 {
				t.Fatalf("quota drop at round %d, before the quota existed", e.Round)
			}
			if e.Size != 4 { // flood queues 3*2 sends; 2 survive
				t.Fatalf("quota drop of %d sends, want 4", e.Size)
			}
		case trace.KindQuotaChange:
			changes++
			if e.Round != 3 || e.Size != 2 {
				t.Fatalf("unexpected quota-change event: %+v", e)
			}
		}
	}
	if drops != 2 || changes != 1 {
		t.Fatalf("drops=%d changes=%d, want 2 and 1", drops, changes)
	}
}

// TestFaultDuplicateDelivery asserts a rate-1 duplicate rule delivers
// the message twice within the round — the deliberate model violation —
// and records link-dup events.
func TestFaultDuplicateDelivery(t *testing.T) {
	t.Parallel()
	net, log := chatterNet(t, &FaultPlan{
		Seed:   1,
		Events: []FaultEvent{{Round: 2, Kind: FaultDuplicate, From: 10, To: 30, Rate: 1}},
	})
	mustRounds(t, net, 3)
	events := log.Events()
	if got := deliveriesBetween(events, 10, 30, 3, 3); got != 2 {
		t.Fatalf("duplicate rule delivered %d copies, want 2", got)
	}
	if got := deliveriesBetween(events, 10, 20, 3, 3); got != 1 {
		t.Fatalf("unscoped link affected: %d copies to 20, want 1", got)
	}
	// The rule is live for the routes of rounds 2 and 3 (one 10->30
	// send each); activation events carry Enc="rate=...", dup events
	// carry no Enc.
	dups := 0
	for _, e := range events {
		if e.Kind == trace.KindLinkDup && e.Enc == "" {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("%d link-dup events, want 2", dups)
	}
}

// TestFaultCorruptDelivery asserts a rate-1 corrupt rule either mutates
// the delivered encoding (still decodable) or drops the message, and
// that the choice is deterministic.
func TestFaultCorruptDelivery(t *testing.T) {
	t.Parallel()
	run := func() (delivered []string, corrupts int) {
		net, log := chatterNet(t, &FaultPlan{
			Seed:   1,
			Events: []FaultEvent{{Round: 2, Kind: FaultCorrupt, From: 10, Rate: 1}},
		})
		mustRounds(t, net, 4)
		for _, e := range log.Events() {
			// Corruption events carry no Enc; the activation event does
			// (Enc="rate=1") and must not be counted.
			if e.Kind == trace.KindLinkCorrupt && e.Enc == "" {
				corrupts++
			}
			if e.From == 10 && e.Round >= 3 && e.Enc != "" {
				// A delivery at round R carries node 10's round R-1
				// broadcast; a surviving corrupted copy must differ
				// from that round's canonical encoding.
				orig := string(wire.Encode(wire.Input{X: wire.V(float64(e.Round - 1))}))
				if e.Enc == orig {
					t.Fatal("corrupt rule delivered an unmodified encoding")
				}
				delivered = append(delivered, fmt.Sprintf("%d->%d@%d:%x", e.From, e.To, e.Round, e.Enc))
			}
		}
		return delivered, corrupts
	}
	delivered, corrupts := run()
	if corrupts == 0 {
		t.Fatal("no corruption events recorded")
	}
	d2, c2 := run()
	if fmt.Sprint(delivered) != fmt.Sprint(d2) || corrupts != c2 {
		t.Fatal("corruption not deterministic across identical runs")
	}
}

// TestFaultReorderShufflesInboxOrder asserts a rate-1 reorder rule
// permutes a receiver's within-round inbox and records the event.
func TestFaultReorderShufflesInboxOrder(t *testing.T) {
	t.Parallel()
	run := func(rate float64) []string {
		rec := &orderRecorder{id: 50}
		log := trace.NewEventLog(0)
		net := New(Config{
			MaxRounds: 6, EventLog: log,
			FaultPlan: &FaultPlan{
				Seed:   3,
				Events: []FaultEvent{{Round: 1, Kind: FaultReorder, To: 50, Rate: rate}},
			},
		})
		for _, id := range []ids.ID{10, 20, 30, 40} {
			if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Add(rec); err != nil {
			t.Fatal(err)
		}
		mustRounds(t, net, 3)
		if rate > 0 {
			found := false
			for _, e := range log.Events() {
				if e.Kind == trace.KindLinkReorder && e.To == 50 {
					found = true
				}
			}
			if !found {
				t.Fatal("no link-reorder event recorded")
			}
		}
		return rec.log
	}
	sorted := run(0)
	shuffled := run(1)
	if len(sorted) == 0 || len(shuffled) != len(sorted) {
		t.Fatalf("recorder saw %d vs %d messages", len(sorted), len(shuffled))
	}
	if fmt.Sprint(sorted) == fmt.Sprint(shuffled) {
		t.Fatal("rate-1 reorder left the inbox order unchanged")
	}
}

// orderRecorder logs its inbox order and never sends.
type orderRecorder struct {
	id  ids.ID
	log []string
}

func (o *orderRecorder) ID() ids.ID { return o.id }
func (o *orderRecorder) Done() bool { return false }
func (o *orderRecorder) Step(env *RoundEnv) {
	for m := range env.Inbox.All() {
		o.log = append(o.log, fmt.Sprintf("%d<-%d", env.Round, m.From))
	}
}

// floodPanic queues Count unicasts to each peer, then panics at Round —
// the same round it exceeds the send quota.
type floodPanic struct {
	flood
	Round int
}

func (f *floodPanic) Step(env *RoundEnv) {
	f.flood.Step(env)
	if env.Round == f.Round {
		panic("flood then die")
	}
}

// TestQuotaCrashSameRoundOrdering is the SendQuota × crash interplay
// contract: a node that panics in the same round it exceeds its quota
// produces quota-drop then node-crashed, adjacent and in that order, in
// byte-identical transcripts across worker counts {0,1,3,5} and
// concurrent jobs {1,4}.
func TestQuotaCrashSameRoundOrdering(t *testing.T) {
	t.Parallel()
	peers := []ids.ID{11, 22, 33}
	run := func(workers int) []trace.Event {
		log := trace.NewEventLog(0)
		net := New(Config{MaxRounds: 8, EventLog: log, SendQuota: 2})
		if workers > 0 {
			net.forceWorkers(workers)
			defer net.Close()
		}
		if err := net.Add(&floodPanic{
			flood: flood{Ident: 11, Peers: peers, Count: 3},
			Round: 2,
		}); err != nil {
			t.Fatal(err)
		}
		for _, id := range peers[1:] {
			if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
				t.Fatal(err)
			}
		}
		mustRounds(t, net, 4)
		return log.Events()
	}
	base := run(0)
	idx := -1
	for i, e := range base {
		if e.Round == 2 && e.Kind == trace.KindQuotaDrop && e.From == 11 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no quota-drop event in the crash round")
	}
	if e := base[idx+1]; e.Kind != trace.KindNodeCrashed || e.From != 11 || e.Round != 2 {
		t.Fatalf("quota-drop not followed by node-crashed: next event %+v", e)
	}
	// flood queues 3 unicasts per peer = 9 sends; quota 2 → 7 dropped.
	if base[idx].Size != 7 {
		t.Fatalf("quota-drop of %d sends, want 7", base[idx].Size)
	}
	for _, workers := range []int{1, 3, 5} {
		got := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Fatalf("workers=%d: transcript differs from sequential", workers)
		}
	}
	for _, budget := range []int{1, 4} {
		outs := make([][]trace.Event, 4)
		jobs := eventJobs{run: func(i int) { outs[i] = run(0) }}
		s := sched.New(budget)
		var phase sched.Phase
		s.Run(&phase, &jobs, len(outs), len(outs))
		s.Close()
		for j, got := range outs {
			if fmt.Sprint(got) != fmt.Sprint(base) {
				t.Fatalf("budget=%d job=%d: transcript differs", budget, j)
			}
		}
	}
}

// eventJobs adapts a closure to sched.Task.
type eventJobs struct{ run func(i int) }

func (e *eventJobs) Run(i int) { e.run(i) }
