package simnet

import (
	"math/rand"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// ChatterProcess broadcasts one distinct payload every round and never
// terminates: the broadcast-heavy workload (n² deliveries per round) that
// the paper's protocols put on the engine in their all-to-all phases. It
// is exported so the round-engine micro-benchmarks in this package and in
// cmd/ubabench measure the identical workload.
type ChatterProcess struct {
	Ident ids.ID
}

// ID returns the process identifier.
func (c *ChatterProcess) ID() ids.ID { return c.Ident }

// Done always reports false; a chatter process never halts.
func (c *ChatterProcess) Done() bool { return false }

// Step broadcasts one payload whose content varies by round, so
// cross-round dedup state cannot short-circuit the work.
func (c *ChatterProcess) Step(env *RoundEnv) {
	env.Broadcast(wire.Input{X: wire.V(float64(env.Round))})
}

// NewBroadcastBench builds a network of n chatter processes with traffic
// accounting attached — the standard fixture for BenchmarkRoundEngine*
// and the `ubabench -benchjson` harness. maxRounds bounds RunRound calls.
func NewBroadcastBench(n, maxRounds int, concurrent bool) (*Network, *trace.Collector) {
	rng := rand.New(rand.NewSource(1))
	nodeIDs := ids.Sparse(rng, n)
	col := &trace.Collector{}
	net := New(Config{
		MaxRounds:  maxRounds,
		Concurrent: concurrent,
		Collector:  col,
	})
	for _, id := range nodeIDs {
		if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
			panic(err) // ids.Sparse never yields duplicates
		}
	}
	return net, col
}
