package simnet

import (
	"math/rand"
	"runtime"

	"uba/internal/ids"
	"uba/internal/simnet/sched"
	"uba/internal/trace"
	"uba/internal/wire"
)

// ChatterProcess broadcasts one distinct payload every round and never
// terminates: the broadcast-heavy workload (n² deliveries per round) that
// the paper's protocols put on the engine in their all-to-all phases. It
// is exported so the round-engine micro-benchmarks in this package and in
// cmd/ubabench measure the identical workload.
type ChatterProcess struct {
	Ident ids.ID
}

// ID returns the process identifier.
func (c *ChatterProcess) ID() ids.ID { return c.Ident }

// Done always reports false; a chatter process never halts.
func (c *ChatterProcess) Done() bool { return false }

// Step broadcasts one payload whose content varies by round, so
// cross-round dedup state cannot short-circuit the work.
func (c *ChatterProcess) Step(env *RoundEnv) {
	env.Broadcast(wire.Input{X: wire.V(float64(env.Round))})
}

// NewBroadcastBench builds a network of n chatter processes with traffic
// accounting attached — the standard fixture for BenchmarkRoundEngine*
// and the `ubabench -benchjson` harness. maxRounds bounds RunRound calls.
// Errors are returned, not panicked, so a campaign driver embedding the
// fixture can fail one cell without killing the process.
func NewBroadcastBench(n, maxRounds int, concurrent bool) (*Network, *trace.Collector, error) {
	return newBroadcastBench(n, maxRounds, concurrent, nil)
}

func newBroadcastBench(n, maxRounds int, concurrent bool, plan *FaultPlan) (*Network, *trace.Collector, error) {
	rng := rand.New(rand.NewSource(1))
	nodeIDs := ids.Sparse(rng, n)
	col := &trace.Collector{}
	net := New(Config{
		MaxRounds:  maxRounds,
		Concurrent: concurrent,
		Collector:  col,
		FaultPlan:  plan,
	})
	for _, id := range nodeIDs {
		if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
			// Unreachable with ids.Sparse (no duplicates), but a
			// benchmark fixture must not be able to kill a campaign.
			return nil, nil, err
		}
	}
	return net, col, nil
}

// RoundPhases drives the two halves of a round — step and
// routing/delivery — in isolation on the broadcast-heavy fixture, so
// the phase-split benchmarks (BenchmarkStepPhase*/BenchmarkRoutePhase*
// and the `ubabench -benchjson`/`-perfsmoke` harness) can attribute
// time to the half that spends it. It lives in the library (not a
// _test.go file) so cmd/ubabench can run the identical workload.
type RoundPhases struct {
	net      *Network
	col      *trace.Collector
	template []send // one round's unsorted, undeduped send stream
	scratch  []send
}

// NewRoundPhases builds the phase-split fixture: n chatter processes
// plus a frozen template of one round's sends for RouteOnly. Like
// NewBroadcastBench, failures are returned rather than panicked.
func NewRoundPhases(n int, concurrent bool) (*RoundPhases, error) {
	return NewRoundPhasesPlan(n, concurrent, nil)
}

// NewRoundPhasesPlan is NewRoundPhases with a fault plan attached to
// the underlying network. With an idle plan (non-nil but scheduling no
// events for the measured rounds) the fixture measures the cost of plan
// *presence* alone: the route path takes its fault-aware branches —
// scratch resets, the keyed copy loop — but no rule ever goes live, so
// the row isolates what attaching a plan costs a healthy round. The
// perf-smoke plan rows and the zero-alloc gate both certify that cost
// stays allocation-free; a nil plan compiles the plan machinery away
// entirely (see Config.FaultPlan).
func NewRoundPhasesPlan(n int, concurrent bool, plan *FaultPlan) (*RoundPhases, error) {
	net, col, err := newBroadcastBench(n, DefaultMaxRounds, concurrent, plan)
	if err != nil {
		return nil, err
	}
	rp := &RoundPhases{net: net, col: col}
	// One step phase seeds the route template. The template keeps the
	// pre-sort, pre-dedup stream, so every RouteOnly pays the full
	// block-sort + dedup + classify + delivery cost of a live round.
	net.round++
	outs, _, err := rp.step()
	if err != nil {
		// Unreachable for chatter processes (no contact rule, no
		// quotas), but returned so an embedding driver stays alive.
		net.Close()
		return nil, err
	}
	rp.template = append([]send(nil), outs...)
	return rp, nil
}

func (rp *RoundPhases) step() ([]send, int64, error) {
	if rp.net.cfg.Concurrent {
		return rp.net.stepConcurrent()
	}
	return rp.net.stepSequential()
}

// StepOnly runs one step phase (every process steps, sends are merged
// in node order) without routing the result. Inboxes are empty, as in
// the first round of the full benchmark.
func (rp *RoundPhases) StepOnly() error {
	rp.net.round++
	_, _, err := rp.step()
	return err
}

// RouteOnly routes one frozen round's send stream — block-local sort,
// dedup, arena sizing, sharded delivery, Collector flush — without
// stepping any process. The template is copied first, so the in-place
// sort cannot make later iterations cheaper.
func (rp *RoundPhases) RouteOnly() {
	rp.net.round++
	if cap(rp.scratch) < len(rp.template) {
		rp.scratch = make([]send, len(rp.template))
	}
	outs := rp.scratch[:len(rp.template)]
	copy(outs, rp.template)
	acct := rp.net.accountRound(outs)
	deliveries, bytes := rp.net.route(outs)
	rp.col.AddRound(rp.net.round, acct.Broadcasts, acct.Unicasts, deliveries, bytes)
}

// Close releases the underlying network's worker pool, if any.
func (rp *RoundPhases) Close() { rp.net.Close() }

// CampaignBench is the campaign-scale throughput fixture: jobs
// independent sequential chatter networks multiplexed over one bounded
// scheduler, exactly the shape chaos.RunCampaign and `ubasweep -jobs`
// put on the engine. One RunChunk advances every simulation by a fixed
// number of rounds through a single scheduler phase (cap = jobs), so a
// benchmark op measures aggregate rounds across concurrent simulations,
// including the admission/fairness cost of the scheduler itself.
//
// The fixture owns its scheduler (budget = GOMAXPROCS at construction)
// rather than using sched.Default, so GOMAXPROCS-pinned benchmark rows
// measure the budget they name instead of whatever budget the process
// singleton was first created with. The dispatch path — Scheduler.Run
// over a reused Phase — is the same code the campaign drivers use.
type CampaignBench struct {
	sched *sched.Scheduler
	nets  []*Network
	errs  []error
	chunk int
	phase sched.Phase
}

// NewCampaignBench builds jobs sequential broadcast-bench networks of n
// chatter processes each. Failures are returned, not panicked, matching
// the other fixtures in this file.
func NewCampaignBench(jobs, n int) (*CampaignBench, error) {
	cb := &CampaignBench{
		sched: sched.New(runtime.GOMAXPROCS(0)),
		nets:  make([]*Network, jobs),
		errs:  make([]error, jobs),
	}
	for j := range cb.nets {
		net, _, err := NewBroadcastBench(n, DefaultMaxRounds, false)
		if err != nil {
			cb.Close()
			return nil, err
		}
		cb.nets[j] = net
	}
	return cb, nil
}

// Run advances one simulation by the current chunk; it is the
// sched.Task body of the campaign phase. Each network is sequential, so
// the rounds run inline on whichever worker (or submitter) claimed the
// index — parallelism comes only from the campaign layer, as in a real
// chaos campaign of sequential cells.
func (cb *CampaignBench) Run(i int) {
	net := cb.nets[i]
	for r := 0; r < cb.chunk; r++ {
		if err := net.RunRound(); err != nil {
			cb.errs[i] = err
			return
		}
	}
}

// RunChunk is one benchmark op: every simulation advances rounds rounds,
// dispatched as one scheduler phase with at most len(nets) in flight.
// After the first call the op is allocation-free in steady state: the
// Phase and its completion channel are reused, and each network's round
// buffers are already sized.
func (cb *CampaignBench) RunChunk(rounds int) error {
	cb.chunk = rounds
	cb.sched.Run(&cb.phase, cb, len(cb.nets), len(cb.nets))
	for _, err := range cb.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases every network's buffers and the fixture's scheduler.
func (cb *CampaignBench) Close() {
	for _, net := range cb.nets {
		if net != nil {
			net.Close()
		}
	}
	cb.sched.Close()
}
