package simnet

import (
	"math/rand"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// ChatterProcess broadcasts one distinct payload every round and never
// terminates: the broadcast-heavy workload (n² deliveries per round) that
// the paper's protocols put on the engine in their all-to-all phases. It
// is exported so the round-engine micro-benchmarks in this package and in
// cmd/ubabench measure the identical workload.
type ChatterProcess struct {
	Ident ids.ID
}

// ID returns the process identifier.
func (c *ChatterProcess) ID() ids.ID { return c.Ident }

// Done always reports false; a chatter process never halts.
func (c *ChatterProcess) Done() bool { return false }

// Step broadcasts one payload whose content varies by round, so
// cross-round dedup state cannot short-circuit the work.
func (c *ChatterProcess) Step(env *RoundEnv) {
	env.Broadcast(wire.Input{X: wire.V(float64(env.Round))})
}

// NewBroadcastBench builds a network of n chatter processes with traffic
// accounting attached — the standard fixture for BenchmarkRoundEngine*
// and the `ubabench -benchjson` harness. maxRounds bounds RunRound calls.
// Errors are returned, not panicked, so a campaign driver embedding the
// fixture can fail one cell without killing the process.
func NewBroadcastBench(n, maxRounds int, concurrent bool) (*Network, *trace.Collector, error) {
	rng := rand.New(rand.NewSource(1))
	nodeIDs := ids.Sparse(rng, n)
	col := &trace.Collector{}
	net := New(Config{
		MaxRounds:  maxRounds,
		Concurrent: concurrent,
		Collector:  col,
	})
	for _, id := range nodeIDs {
		if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
			// Unreachable with ids.Sparse (no duplicates), but a
			// benchmark fixture must not be able to kill a campaign.
			return nil, nil, err
		}
	}
	return net, col, nil
}

// RoundPhases drives the two halves of a round — step and
// routing/delivery — in isolation on the broadcast-heavy fixture, so
// the phase-split benchmarks (BenchmarkStepPhase*/BenchmarkRoutePhase*
// and the `ubabench -benchjson`/`-perfsmoke` harness) can attribute
// time to the half that spends it. It lives in the library (not a
// _test.go file) so cmd/ubabench can run the identical workload.
type RoundPhases struct {
	net      *Network
	col      *trace.Collector
	template []send // one round's unsorted, undeduped send stream
	scratch  []send
}

// NewRoundPhases builds the phase-split fixture: n chatter processes
// plus a frozen template of one round's sends for RouteOnly. Like
// NewBroadcastBench, failures are returned rather than panicked.
func NewRoundPhases(n int, concurrent bool) (*RoundPhases, error) {
	net, col, err := NewBroadcastBench(n, DefaultMaxRounds, concurrent)
	if err != nil {
		return nil, err
	}
	rp := &RoundPhases{net: net, col: col}
	if concurrent {
		// RouteOnly never runs a step phase, so start the pool (the
		// step path starts it lazily) to shard delivery like a real
		// concurrent round.
		net.startPool()
	}
	// One step phase seeds the route template. The template keeps the
	// pre-sort, pre-dedup stream, so every RouteOnly pays the full
	// block-sort + dedup + classify + delivery cost of a live round.
	net.round++
	outs, _, err := rp.step()
	if err != nil {
		// Unreachable for chatter processes (no contact rule, no
		// quotas), but returned so an embedding driver stays alive.
		net.Close()
		return nil, err
	}
	rp.template = append([]send(nil), outs...)
	return rp, nil
}

func (rp *RoundPhases) step() ([]send, int64, error) {
	if rp.net.cfg.Concurrent {
		return rp.net.stepConcurrent()
	}
	return rp.net.stepSequential()
}

// StepOnly runs one step phase (every process steps, sends are merged
// in node order) without routing the result. Inboxes are empty, as in
// the first round of the full benchmark.
func (rp *RoundPhases) StepOnly() error {
	rp.net.round++
	_, _, err := rp.step()
	return err
}

// RouteOnly routes one frozen round's send stream — block-local sort,
// dedup, arena sizing, sharded delivery, Collector flush — without
// stepping any process. The template is copied first, so the in-place
// sort cannot make later iterations cheaper.
func (rp *RoundPhases) RouteOnly() {
	rp.net.round++
	if cap(rp.scratch) < len(rp.template) {
		rp.scratch = make([]send, len(rp.template))
	}
	outs := rp.scratch[:len(rp.template)]
	copy(outs, rp.template)
	acct := rp.net.accountRound(outs)
	deliveries, bytes := rp.net.route(outs)
	rp.col.AddRound(rp.net.round, acct.Broadcasts, acct.Unicasts, deliveries, bytes)
}

// Close releases the underlying network's worker pool, if any.
func (rp *RoundPhases) Close() { rp.net.Close() }
