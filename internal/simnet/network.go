package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"uba/internal/ids"
	"uba/internal/trace"
)

// Errors returned by the network.
var (
	// ErrMaxRounds reports that Run's stop predicate was not satisfied
	// within Config.MaxRounds rounds.
	ErrMaxRounds = errors.New("simnet: round limit exceeded")
	// ErrDuplicateID reports an attempt to register two processes with
	// the same identifier.
	ErrDuplicateID = errors.New("simnet: duplicate process id")
	// ErrContactRule reports a unicast from a correct process to a node
	// that never messaged it, which the paper's model forbids.
	ErrContactRule = errors.New("simnet: unicast to unknown contact")
)

// Config parameterizes a Network.
type Config struct {
	// MaxRounds bounds Run; 0 means DefaultMaxRounds. Protocols in this
	// repository terminate in O(n) rounds, so the bound exists only to
	// turn a protocol bug into a test failure instead of a hang.
	MaxRounds int
	// Concurrent selects the goroutine-per-node runner instead of the
	// sequential one. Both produce identical executions.
	Concurrent bool
	// EnforceContactRule makes the engine verify that correct processes
	// unicast only to nodes that previously messaged them. Violations
	// surface as an error from Run.
	EnforceContactRule bool
	// Collector, when non-nil, receives traffic accounting.
	Collector *trace.Collector
	// EventLog, when non-nil, records a message-level transcript of
	// every delivery (for debugging and the ubasim -trace flag).
	EventLog *trace.EventLog
}

// DefaultMaxRounds is the Run bound used when Config.MaxRounds is zero.
const DefaultMaxRounds = 10_000

type procState struct {
	proc      Process
	byzantine bool
	inbox     []Received
	// contacts is the set of nodes that have delivered a message to
	// this process, used for the contact rule.
	contacts map[ids.ID]struct{}
}

// Network owns a set of processes and runs them in lock-step rounds.
// Methods are not safe for concurrent use; drive a Network from one
// goroutine (the concurrent runner parallelizes internally).
type Network struct {
	cfg   Config
	procs map[ids.ID]*procState
	order []ids.ID // live process ids, sorted ascending
	round int
	err   error
}

// New returns an empty network.
func New(cfg Config) *Network {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	return &Network{
		cfg:   cfg,
		procs: make(map[ids.ID]*procState),
	}
}

// Add registers a correct process. It must be called before the first
// round or between rounds (a node joining a dynamic network joins at a
// round boundary, per the paper's dynamic model).
func (n *Network) Add(p Process) error { return n.add(p, false) }

// AddByzantine registers a Byzantine process. Byzantine processes are
// exempt from the contact rule: the paper allows a Byzantine node to
// behave as if it already knows all the nodes.
func (n *Network) AddByzantine(p Process) error { return n.add(p, true) }

func (n *Network) add(p Process, byzantine bool) error {
	id := p.ID()
	if id == ids.None {
		return fmt.Errorf("simnet: process id must be nonzero")
	}
	if _, exists := n.procs[id]; exists {
		return fmt.Errorf("%w: %v", ErrDuplicateID, id)
	}
	n.procs[id] = &procState{
		proc:      p,
		byzantine: byzantine,
		contacts:  make(map[ids.ID]struct{}),
	}
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order, 0)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = id
	return nil
}

// Remove detaches a process from the network (a node that has left a
// dynamic network). Pending messages to it are dropped.
func (n *Network) Remove(id ids.ID) {
	if _, ok := n.procs[id]; !ok {
		return
	}
	delete(n.procs, id)
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	if i < len(n.order) && n.order[i] == id {
		n.order = append(n.order[:i], n.order[i+1:]...)
	}
}

// Round returns the number of rounds executed so far.
func (n *Network) Round() int { return n.round }

// Size returns the number of registered (not yet removed) processes.
func (n *Network) Size() int { return len(n.order) }

// IDs returns the live process ids in ascending order.
func (n *Network) IDs() []ids.ID {
	out := make([]ids.ID, len(n.order))
	copy(out, n.order)
	return out
}

// Process returns the registered process with the given id, or nil.
func (n *Network) Process(id ids.ID) Process {
	st, ok := n.procs[id]
	if !ok {
		return nil
	}
	return st.proc
}

// RunRound executes exactly one round: step every live, non-done process
// with its inbox, then route the produced messages for delivery at the
// start of the next round.
func (n *Network) RunRound() error {
	if n.err != nil {
		return n.err
	}
	n.round++
	if n.cfg.Collector != nil {
		n.cfg.Collector.BeginRound(n.round)
	}

	var outs []send
	var err error
	if n.cfg.Concurrent {
		outs, err = n.stepConcurrent()
	} else {
		outs, err = n.stepSequential()
	}
	if err != nil {
		n.err = err
		return err
	}
	n.route(outs)
	return nil
}

func (n *Network) stepSequential() ([]send, error) {
	var outs []send
	for _, id := range n.order {
		st := n.procs[id]
		sends, err := n.stepOne(st)
		if err != nil {
			return nil, err
		}
		outs = append(outs, sends...)
	}
	return outs, nil
}

func (n *Network) stepConcurrent() ([]send, error) {
	type result struct {
		idx   int
		sends []send
		err   error
	}
	live := make([]*procState, len(n.order))
	for i, id := range n.order {
		live[i] = n.procs[id]
	}
	results := make([]result, len(live))
	var wg sync.WaitGroup
	for i, st := range live {
		wg.Add(1)
		go func(i int, st *procState) {
			defer wg.Done()
			sends, err := n.stepOne(st)
			results[i] = result{idx: i, sends: sends, err: err}
		}(i, st)
	}
	wg.Wait()
	var outs []send
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		outs = append(outs, res.sends...)
	}
	return outs, nil
}

// stepOne steps a single process with its pending inbox. It is safe to
// call concurrently for distinct processes: it touches only st and the
// immutable parts of n.
func (n *Network) stepOne(st *procState) ([]send, error) {
	inbox := st.inbox
	st.inbox = nil
	if st.proc.Done() {
		return nil, nil
	}
	env := &RoundEnv{
		Round: n.round,
		Inbox: inbox,
		self:  st.proc.ID(),
	}
	st.proc.Step(env)
	if n.cfg.Collector != nil {
		for range env.sends {
			n.cfg.Collector.RecordSend()
		}
	}
	if n.cfg.EnforceContactRule && !st.byzantine {
		for _, s := range env.sends {
			if s.to == ids.None {
				continue
			}
			if _, known := st.contacts[s.to]; !known {
				return nil, fmt.Errorf("%w: %v -> %v in round %d",
					ErrContactRule, s.from, s.to, n.round)
			}
		}
	}
	return env.sends, nil
}

// route fans out and filters the round's sends into next-round inboxes.
func (n *Network) route(outs []send) {
	// Deterministic processing order regardless of runner: sort by
	// (from, to, encoding). Duplicate filtering below makes delivery
	// content identical either way; sorting fixes inbox order exactly.
	sort.Slice(outs, func(i, j int) bool {
		a, b := outs[i], outs[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.encoded < b.encoded
	})

	type dupKey struct {
		from    ids.ID
		encoded string
	}
	seen := make(map[ids.ID]map[dupKey]struct{})
	deliver := func(to ids.ID, s send) {
		st, ok := n.procs[to]
		if !ok || st.proc.Done() {
			return
		}
		byReceiver := seen[to]
		if byReceiver == nil {
			byReceiver = make(map[dupKey]struct{})
			seen[to] = byReceiver
		}
		key := dupKey{from: s.from, encoded: s.encoded}
		if _, dup := byReceiver[key]; dup {
			// Duplicate from the same node in one round: discarded
			// by the model.
			return
		}
		byReceiver[key] = struct{}{}
		st.inbox = append(st.inbox, Received{
			From:    s.from,
			Payload: s.payload,
			encoded: s.encoded,
		})
		st.contacts[s.from] = struct{}{}
		if n.cfg.Collector != nil {
			n.cfg.Collector.RecordDelivery(len(s.encoded))
		}
		if n.cfg.EventLog != nil {
			n.cfg.EventLog.Record(trace.Event{
				Round:     n.round + 1, // delivered at the start of the next round
				From:      uint64(s.from),
				To:        uint64(to),
				Kind:      s.payload.Kind().String(),
				Size:      len(s.encoded),
				Broadcast: s.to == ids.None,
			})
		}
	}

	for _, s := range outs {
		if s.to != ids.None {
			deliver(s.to, s)
			continue
		}
		for _, id := range n.order {
			deliver(id, s)
		}
	}

	// Inboxes were appended in sorted send order, so they are already
	// sorted by (from, encoding); fix the order explicitly anyway to
	// keep the invariant independent of routing details.
	for _, id := range n.order {
		st := n.procs[id]
		sort.Slice(st.inbox, func(i, j int) bool {
			a, b := st.inbox[i], st.inbox[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.encoded < b.encoded
		})
	}
}

// Run executes rounds until stop returns true (checked after every round)
// or the round limit is reached, and returns the number of rounds run.
func (n *Network) Run(stop func(*Network) bool) (int, error) {
	start := n.round
	for n.round-start < n.cfg.MaxRounds {
		if err := n.RunRound(); err != nil {
			return n.round - start, err
		}
		if stop(n) {
			return n.round - start, nil
		}
	}
	return n.round - start, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, n.cfg.MaxRounds)
}

// AllDone returns a stop predicate that is satisfied when every process
// with one of the given ids reports Done. Use it to wait for the correct
// nodes while Byzantine processes keep running.
func AllDone(waitFor []ids.ID) func(*Network) bool {
	return func(n *Network) bool {
		for _, id := range waitFor {
			st, ok := n.procs[id]
			if !ok {
				continue // removed processes count as finished
			}
			if !st.proc.Done() {
				return false
			}
		}
		return true
	}
}
