package simnet

import (
	"errors"
	"fmt"
	"sort"

	"uba/internal/ids"
	"uba/internal/simnet/sched"
	"uba/internal/trace"
)

// Errors returned by the network.
var (
	// ErrMaxRounds reports that Run's stop predicate was not satisfied
	// within Config.MaxRounds rounds.
	ErrMaxRounds = errors.New("simnet: round limit exceeded")
	// ErrDuplicateID reports an attempt to register two processes with
	// the same identifier.
	ErrDuplicateID = errors.New("simnet: duplicate process id")
	// ErrContactRule reports a unicast from a correct process to a node
	// that never messaged it, which the paper's model forbids.
	ErrContactRule = errors.New("simnet: unicast to unknown contact")
)

// Config parameterizes a Network.
type Config struct {
	// MaxRounds bounds Run; 0 means DefaultMaxRounds. Protocols in this
	// repository terminate in O(n) rounds, so the bound exists only to
	// turn a protocol bug into a test failure instead of a hang.
	MaxRounds int
	// Concurrent selects the pooled worker runner instead of the
	// sequential one. Both produce identical executions.
	Concurrent bool
	// Workers, when positive, fixes the concurrent runner's pool size;
	// zero means GOMAXPROCS capped at the number of live processes. The
	// execution is identical for every worker count — the knob exists
	// for capacity tuning and for equivalence tests that sweep it.
	Workers int
	// EnforceContactRule makes the engine verify that correct processes
	// unicast only to nodes that previously messaged them. Violations
	// surface as an error from Run.
	EnforceContactRule bool
	// Collector, when non-nil, receives traffic accounting. Totals for a
	// round are flushed in one batch after the round's sends have been
	// validated and routed, so a round that aborts (e.g. on a contact
	// rule violation) contributes no traffic.
	Collector *trace.Collector
	// EventLog, when non-nil, records a message-level transcript of
	// every delivery (for debugging and the ubasim -trace flag). The
	// canonical transcript order is receiver-major: per round,
	// deliveries are grouped by receiver in ascending node order, each
	// receiver's messages in its inbox order. Both runners produce the
	// same transcript for any worker count (per-shard event buffers are
	// merged in receiver order; see route.go). Fault-containment events
	// (trace.KindNodeCrashed, trace.KindQuotaDrop) are recorded in node
	// order at the start of the round they occurred in, before that
	// round's deliveries.
	EventLog *trace.EventLog
	// Observer, when non-nil, receives each completed round's trace
	// events at the round boundary — the feed for online safety oracles
	// (internal/oracle). It sees exactly what the EventLog would record
	// for the round: containment events first (node order), then the
	// deliveries routed for the next round (receiver order). The slice
	// is reused across rounds; observers must not retain it.
	Observer RoundObserver
	// SendQuota, when positive, bounds the send operations one node may
	// queue in one round. Excess sends are dropped deterministically
	// (queue order: the first SendQuota survive) and a single
	// trace.KindQuotaDrop event records the drop — the containment
	// valve for Byzantine amplification floods. Applies to every node,
	// correct or Byzantine; quotas are a network capacity, not a
	// behavior assumption.
	SendQuota int
	// ByteQuota, when positive, bounds the encoded payload bytes one
	// node may queue in one round, with the same deterministic policy:
	// the longest prefix of the send queue within the budget survives.
	ByteQuota int64
	// FaultPlan, when non-nil, schedules deterministic round-timed
	// faults — partitions, link drop/duplicate/corrupt/reorder rules,
	// crash/recover churn, late joins, quota changes (see fault.go).
	// An invalid plan latches as the network's error, surfaced by the
	// first RunRound. A nil plan compiles to the unmodified zero-alloc
	// round path.
	FaultPlan *FaultPlan
}

// RoundObserver receives each completed round's trace events — the
// attachment point for online safety monitors. ObserveRound is called
// once per successful round, from the goroutine driving the network,
// for both the sequential and the concurrent runner. The events slice
// is valid only for the duration of the call.
type RoundObserver interface {
	ObserveRound(round int, events []trace.Event)
}

// RoundAccounting is the per-round traffic ledger: the
// broadcast/unicast split of the round's send operations, the
// post-fanout delivery tallies, and the largest single-node send
// counts among correct senders — the quantity the protocols' certified
// complexity contracts bound. It is computed in one allocation-free
// pass over the node-ordered merged send stream.
type RoundAccounting struct {
	// Broadcasts and Unicasts count the round's send operations by
	// kind, across all senders.
	Broadcasts int64
	Unicasts   int64
	// Deliveries and Bytes are the post-fanout totals, as in
	// trace.RoundStats.
	Deliveries int64
	Bytes      int64
	// Nodes is the number of live processes this round.
	Nodes int
	// CorrectMaxBroadcasts and CorrectMaxUnicasts are the largest
	// per-node tallies among non-Byzantine senders. Byzantine nodes
	// are excluded: an adversary is free to flood, and the complexity
	// contracts only bound correct processes.
	CorrectMaxBroadcasts int
	CorrectMaxUnicasts   int
}

// RoundStatsObserver is the optional extension of RoundObserver: an
// observer that also implements it receives each successful round's
// RoundAccounting immediately after ObserveRound. The runtime
// complexity oracle attaches here.
type RoundStatsObserver interface {
	ObserveRoundStats(round int, acct RoundAccounting)
}

// DefaultMaxRounds is the Run bound used when Config.MaxRounds is zero.
const DefaultMaxRounds = 10_000

type procState struct {
	proc Process
	// id is the identifier the process registered with. The engine
	// stamps it as the sender on every queued message (rather than
	// re-asking proc.ID() each round), which both drops an interface
	// call from the hot path and guarantees the per-sender grouping the
	// block-local route sort relies on.
	id        ids.ID
	byzantine bool
	// crashed marks a node whose Step panicked (the engine contained
	// the panic and converted the node into a crash fault) or that a
	// fault plan crashed on schedule. A crashed node is not stepped and
	// receives no messages; only a fault-plan recover event clears it.
	crashed bool
	// joinRound, when positive, marks a fault-plan late participant:
	// while joinRound > the current round the node neither steps nor
	// receives anything.
	joinRound int
	inbox     Inbox
	// contacts is the set of nodes that have delivered a message to
	// this process, used for the contact rule. It is nil (and not
	// maintained) unless Config.EnforceContactRule is set.
	contacts map[ids.ID]struct{}

	// Round-scoped scratch, recycled across rounds (see the package
	// docs for the retention contract this imposes on Process.Step).
	env     RoundEnv
	sendBuf []send
}

// stepResult is one process's contribution to a round, produced by either
// runner and merged in node order. Containment outcomes (a contained
// panic, a quota drop) travel through it so the merge can emit their
// trace events in node order regardless of worker scheduling.
type stepResult struct {
	sends []send
	err   error
	// crashed reports that Step panicked this round and the node was
	// converted into a crash fault; crashReason is the recovered panic
	// value (kept out of the transcript — see Network.Crashes).
	crashed     bool
	crashReason string
	// dropped counts send operations discarded by the send/byte quota.
	dropped int
}

// CrashRecord describes one contained Step panic.
type CrashRecord struct {
	// Node is the process that panicked.
	Node ids.ID
	// Round is the round whose Step call panicked.
	Round int
	// Reason is the recovered panic value, formatted. It is diagnostic
	// only and deliberately not part of the trace transcript (a panic
	// value could format pointers, which would break byte-identical
	// transcripts across runs).
	Reason string
}

// Network owns a set of processes and runs them in lock-step rounds.
// Methods are not safe for concurrent use; drive a Network from one
// goroutine (the concurrent runner parallelizes internally).
type Network struct {
	cfg   Config
	procs map[ids.ID]*procState
	order []ids.ID     // live process ids, sorted ascending
	live  []*procState // states aligned with order
	round int
	err   error

	// Round-scoped scratch reused across rounds to keep the hot path
	// allocation-free in steady state.
	outs         []send
	results      []stepResult
	bcastDigests []uint64
	bcastEncs    []string

	// Containment state: contained panics in occurrence order, plus
	// round-scoped event scratch (containment events of the current
	// round, and the combined event slice handed to cfg.Observer).
	crashes     []CrashRecord
	stepEvents  []trace.Event
	roundEvents []trace.Event

	// faults is the compiled Config.FaultPlan, nil for fault-free runs
	// (the certified hot path checks this one pointer and nothing else).
	faults *faultState

	// Routing scratch (see route.go): the done snapshot, the surviving
	// broadcast indices, the per-receiver unicast buckets, the shared
	// broadcast block and unicast arena the inbox views read through,
	// and the per-shard delivery state. bcastLive/uniLive track how
	// much of the recycled block/arena held references last round, so
	// shrinking rounds clear the dead tail.
	doneMask   []bool
	bcastIdx   []int32
	uniRecv    []int32
	uniSend    []int32
	uniIdx     []int32
	uniStart   []int32
	uniCursor  []int32
	bcastBlock []Received
	bcastBytes int64
	bcastLive  int
	uniArena   []Received
	uniLive    int
	shards     []routeShard

	// Concurrent-runner dispatch state (see runner.go): the scheduler
	// this network submits phases to (bound lazily to sched.Default
	// unless a test injects a private one), the reusable Phase record
	// and phase-tagged task, and the lifecycle flags Close manages.
	sched      *sched.Scheduler
	ownsSched  bool
	closed     bool
	phase      sched.Phase
	task       poolTask
	scratchBox *netScratch // emptied box kept for releaseScratch (see scratch.go)
}

// New returns an empty network. Its round buffers start at whatever
// high-water mark the last Closed network parked in the scratch pool
// (see scratch.go), so campaign cells do not re-grow them from nil.
func New(cfg Config) *Network {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	n := &Network{
		cfg:   cfg,
		procs: make(map[ids.ID]*procState),
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Validate(); err != nil {
			n.err = fmt.Errorf("simnet: invalid fault plan: %w", err)
		} else {
			n.faults = newFaultState(cfg.FaultPlan)
		}
	}
	n.adoptScratch()
	return n
}

// Add registers a correct process. It must be called before the first
// round or between rounds (a node joining a dynamic network joins at a
// round boundary, per the paper's dynamic model).
func (n *Network) Add(p Process) error { return n.add(p, false) }

// AddByzantine registers a Byzantine process. Byzantine processes are
// exempt from the contact rule: the paper allows a Byzantine node to
// behave as if it already knows all the nodes.
func (n *Network) AddByzantine(p Process) error { return n.add(p, true) }

func (n *Network) add(p Process, byzantine bool) error {
	id := p.ID()
	if id == ids.None {
		return fmt.Errorf("simnet: process id must be nonzero")
	}
	if _, exists := n.procs[id]; exists {
		return fmt.Errorf("%w: %v", ErrDuplicateID, id)
	}
	st := &procState{
		proc:      p,
		id:        id,
		byzantine: byzantine,
	}
	if n.faults != nil {
		st.joinRound = n.faults.joinAt[id]
	}
	if n.cfg.EnforceContactRule {
		st.contacts = make(map[ids.ID]struct{})
	}
	n.procs[id] = st
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order, 0)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = id
	n.live = append(n.live, nil)
	copy(n.live[i+1:], n.live[i:])
	n.live[i] = st
	return nil
}

// Remove detaches a process from the network (a node that has left a
// dynamic network). Pending messages to it are dropped.
func (n *Network) Remove(id ids.ID) {
	if _, ok := n.procs[id]; !ok {
		return
	}
	delete(n.procs, id)
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	if i < len(n.order) && n.order[i] == id {
		n.order = append(n.order[:i], n.order[i+1:]...)
		n.live = append(n.live[:i], n.live[i+1:]...)
	}
}

// Round returns the number of rounds executed so far.
func (n *Network) Round() int { return n.round }

// Size returns the number of registered (not yet removed) processes.
func (n *Network) Size() int { return len(n.order) }

// IDs returns the live process ids in ascending order.
func (n *Network) IDs() []ids.ID {
	out := make([]ids.ID, len(n.order))
	copy(out, n.order)
	return out
}

// Process returns the registered process with the given id, or nil.
func (n *Network) Process(id ids.ID) Process {
	st, ok := n.procs[id]
	if !ok {
		return nil
	}
	return st.proc
}

// RunRound executes exactly one round: step every live, non-done process
// with its inbox, then route the produced messages for delivery at the
// start of the next round. Traffic accounting is batched: one Collector
// flush per successful round, nothing for an aborted one.
//
// A Step panic does not abort the round: it is recovered inside the
// per-node step task and the node becomes a crash fault — silent and
// unreachable from this round on — with a trace.KindNodeCrashed event
// recorded (see Crashes for the panic values). Because recovery happens
// before the node-order merge, transcripts stay byte-identical across
// worker counts.
func (n *Network) RunRound() error {
	if n.err != nil {
		return n.err
	}
	n.round++
	if n.faults != nil {
		// Plan events apply before stepping, on this goroutine, so
		// crash/recover/join/quota effects are visible to every runner
		// identically and their trace events head the round's record.
		n.applyFaultEvents()
	}

	var outs []send
	var err error
	if n.cfg.Concurrent {
		outs, _, err = n.stepConcurrent()
	} else {
		outs, _, err = n.stepSequential()
	}
	if err != nil {
		n.err = err
		return err
	}
	if n.cfg.EventLog != nil {
		if n.faults != nil {
			n.cfg.EventLog.RecordBatch(n.faults.planEvents)
		}
		n.cfg.EventLog.RecordBatch(n.stepEvents)
	}
	var statsObs RoundStatsObserver
	if n.cfg.Observer != nil {
		statsObs, _ = n.cfg.Observer.(RoundStatsObserver)
	}
	var acct RoundAccounting
	if n.cfg.Collector != nil || statsObs != nil {
		// Account before route: the in-place block-local sort below
		// reorders outs (within sender runs, not across them), and the
		// tally pass wants the raw stream.
		acct = n.accountRound(outs)
	}
	deliveries, bytes := n.route(outs)
	acct.Deliveries, acct.Bytes = deliveries, bytes
	if n.cfg.Collector != nil {
		n.cfg.Collector.AddRound(n.round, acct.Broadcasts, acct.Unicasts, deliveries, bytes)
	}
	if n.cfg.Observer != nil {
		n.cfg.Observer.ObserveRound(n.round, n.roundEvents)
	}
	if statsObs != nil {
		statsObs.ObserveRoundStats(n.round, acct)
	}
	return nil
}

// accountRound tallies the round's merged send stream: total
// broadcast/unicast counts plus the per-node maxima among correct
// senders. The stream is node-ordered (each sender's queue is
// contiguous), so one pass with run-boundary detection suffices — no
// per-node scratch, no allocation. The run-boundary flush is a method
// rather than a closure: capturing the accumulators would heap-allocate
// the closure every round.
//
//lint:noalloc the accounting pass runs every collected round and folds into stack-local tallies only
func (n *Network) accountRound(outs []send) RoundAccounting {
	acct := RoundAccounting{Nodes: len(n.live)}
	var curFrom ids.ID
	var curB, curU int
	have := false
	for i := range outs {
		s := &outs[i]
		if !have || s.from != curFrom {
			if have {
				n.foldCorrectMax(&acct, curFrom, curB, curU)
			}
			curFrom, curB, curU, have = s.from, 0, 0, true
		}
		if s.to == ids.None {
			acct.Broadcasts++
			curB++
		} else {
			acct.Unicasts++
			curU++
		}
	}
	if have {
		n.foldCorrectMax(&acct, curFrom, curB, curU)
	}
	return acct
}

// foldCorrectMax folds one sender's per-round broadcast/unicast tallies
// into the accounting's correct-sender maxima. Byzantine senders are
// excluded: the complexity contracts only bound correct processes.
//
//lint:noalloc called once per sender run on the accounting pass; pure field updates
func (n *Network) foldCorrectMax(acct *RoundAccounting, from ids.ID, b, u int) {
	st, ok := n.procs[from]
	if !ok || st.byzantine {
		return
	}
	if b > acct.CorrectMaxBroadcasts {
		acct.CorrectMaxBroadcasts = b
	}
	if u > acct.CorrectMaxUnicasts {
		acct.CorrectMaxUnicasts = u
	}
}

// noteResult folds one node's step outcome into the round: containment
// events are appended in call — i.e. node — order, and contained
// panics are recorded. Shared by both runners' node-order merges.
//
//lint:noalloc appends land in recycled round scratch; in a fault-free steady state both branches are untaken
func (n *Network) noteResult(st *procState, res *stepResult) {
	// Quota-drop precedes node-crashed: a node that both exceeded its
	// quota and panicked in the same round violated the quota first
	// (while still running), then died.
	if res.dropped > 0 {
		n.stepEvents = append(n.stepEvents, trace.Event{
			Round: n.round, From: uint64(st.id), Kind: trace.KindQuotaDrop,
			Size: res.dropped,
		})
	}
	if res.crashed {
		n.crashes = append(n.crashes, CrashRecord{
			Node: st.id, Round: n.round, Reason: res.crashReason,
		})
		n.stepEvents = append(n.stepEvents, trace.Event{
			Round: n.round, From: uint64(st.id), Kind: trace.KindNodeCrashed,
		})
	}
}

// stepSequential steps every live process in node order and merges the
// send buffers into the recycled outs scratch.
//
//lint:noalloc the sequential step merge appends into the network's recycled outs buffer
func (n *Network) stepSequential() ([]send, int64, error) {
	outs := n.outs[:0]
	n.stepEvents = n.stepEvents[:0]
	var sends int64
	for _, st := range n.live {
		res := n.stepOne(st)
		if res.err != nil {
			return nil, 0, res.err
		}
		n.noteResult(st, &res)
		sends += int64(len(res.sends))
		outs = append(outs, res.sends...)
	}
	n.outs = outs
	return outs, sends, nil
}

// stepConcurrent fans the live processes out over the shared scheduler
// and merges the per-process send buffers in node order, so the
// resulting outs slice is byte-identical to the sequential runner's.
//
//lint:noalloc the pooled step merge reuses the results table (capacity-guarded) and the recycled outs buffer
func (n *Network) stepConcurrent() ([]send, int64, error) {
	if cap(n.results) < len(n.live) {
		n.results = make([]stepResult, len(n.live))
	}
	results := n.results[:len(n.live)]
	n.runStep(n.live, results)

	outs := n.outs[:0]
	n.stepEvents = n.stepEvents[:0]
	var sends int64
	var firstErr error
	for i := range results {
		res := &results[i]
		if res.err != nil && firstErr == nil {
			firstErr = res.err // first error in node order, like the sequential runner
		}
		if firstErr == nil {
			n.noteResult(n.live[i], res)
			sends += int64(len(res.sends))
			outs = append(outs, res.sends...)
		}
		// Clear every slot even on the error path: a stale slot would
		// keep its sends slice — and the payloads it references — alive
		// across rounds after the network latched the error.
		res.sends = nil
	}
	n.outs = outs
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return outs, sends, nil
}

// stepOne steps a single process with its pending inbox. It is safe to
// call concurrently for distinct processes: it touches only st and the
// immutable parts of n. A panic inside Process.Step is contained here —
// inside the per-node task, before the node-order merge — so the
// conversion into a crash fault is identical for every worker count.
//
//lint:shardsafe owns=st the step task writes only its node's state; n is read-only here
//lint:noalloc the per-node step task runs n times per round over recycled env/send scratch; only the error return formats
//lint:nonblock step tasks run to the pool's phase barrier; a blocking task would deadlock the round against it
func (n *Network) stepOne(st *procState) stepResult {
	inbox := st.inbox
	// The inbox view reads through the shared broadcast block and the
	// unicast arena, which route() overwrites wholesale next round —
	// this is what forbids Process.Step from retaining env.Inbox.
	st.inbox = Inbox{}
	if st.crashed || st.joinRound > n.round || st.proc.Done() {
		return stepResult{}
	}
	st.env = RoundEnv{
		Round: n.round,
		Inbox: inbox,
		self:  st.id,
		sends: st.sendBuf[:0],
	}
	reason, panicked := safeStep(st.proc, &st.env)
	sends := st.env.sends
	st.sendBuf = sends
	st.env.Inbox = Inbox{}
	if panicked {
		// Deterministic crash conversion: the crashing round produces
		// nothing (its partial send queue is discarded) and the node is
		// silent and unreachable from here on — a fail-stop fault, the
		// strongest containment the model offers. A quota violation the
		// node committed before dying is still accounted (the transcript
		// shows the drop, then the crash). Clear the discarded queue so
		// the dead node cannot pin payloads forever.
		var dropped int
		if n.cfg.SendQuota > 0 || n.cfg.ByteQuota > 0 {
			_, dropped = n.applyQuota(sends)
		}
		clear(sends)
		st.sendBuf = sends[:0]
		st.crashed = true
		return stepResult{crashed: true, crashReason: reason, dropped: dropped}
	}
	var dropped int
	if n.cfg.SendQuota > 0 || n.cfg.ByteQuota > 0 {
		sends, dropped = n.applyQuota(sends)
	}
	if st.contacts != nil && !st.byzantine {
		for i := range sends {
			s := &sends[i]
			if s.to == ids.None {
				continue
			}
			if _, known := st.contacts[s.to]; !known {
				//lint:coldpath a contact-rule violation aborts the run; the error format never executes on the steady-state path
				return stepResult{err: fmt.Errorf("%w: %v -> %v in round %d",
					ErrContactRule, s.from, s.to, n.round)}
			}
		}
	}
	return stepResult{sends: sends, dropped: dropped}
}

// safeStep runs one Step call with panic containment. It exists so the
// deferred recover covers exactly the process code: a panic in the
// engine itself still crashes loudly.
//
//lint:noalloc wraps every Step call; the deferred recover is open-coded and only a contained panic formats
func safeStep(p Process, env *RoundEnv) (reason string, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			//lint:coldpath formatting the panic value runs once per contained crash, never on the steady-state path
			reason = fmt.Sprint(r)
			panicked = true
		}
	}()
	p.Step(env)
	return "", false
}

// applyQuota truncates a node's send queue to the configured per-round
// send and byte quotas: the longest prefix within both budgets survives,
// in queue order, so the drop decision is a pure function of the queue —
// identical for both runners and every worker count. It returns the
// surviving prefix and the number of dropped sends.
//
//lint:noalloc quota truncation slices and clears the caller's buffer in place
func (n *Network) applyQuota(sends []send) ([]send, int) {
	keep := len(sends)
	if q := n.cfg.SendQuota; q > 0 && keep > q {
		keep = q
	}
	if q := n.cfg.ByteQuota; q > 0 {
		var bytes int64
		for i := 0; i < keep; i++ {
			bytes += int64(len(sends[i].encoded))
			if bytes > q {
				keep = i
				break
			}
		}
	}
	if keep == len(sends) {
		return sends, 0
	}
	dropped := len(sends) - keep
	// Clear the dropped tail so the recycled send buffer cannot pin the
	// dropped payloads past the round.
	clear(sends[keep:])
	return sends[:keep], dropped
}

// Run executes rounds until stop returns true (checked after every round)
// or the round limit is reached, and returns the number of rounds run.
func (n *Network) Run(stop func(*Network) bool) (int, error) {
	start := n.round
	for n.round-start < n.cfg.MaxRounds {
		if err := n.RunRound(); err != nil {
			return n.round - start, err
		}
		if stop(n) {
			return n.round - start, nil
		}
	}
	return n.round - start, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, n.cfg.MaxRounds)
}

// AllDone returns a stop predicate that is satisfied when every process
// with one of the given ids reports Done. Use it to wait for the correct
// nodes while Byzantine processes keep running. Removed and crashed
// processes count as finished: like a node that left the network, a
// crash-fault node will never report Done, and waiting on it would turn
// every contained panic into a round-limit error.
func AllDone(waitFor []ids.ID) func(*Network) bool {
	return func(n *Network) bool {
		for _, id := range waitFor {
			st, ok := n.procs[id]
			if !ok {
				continue // removed processes count as finished
			}
			if st.crashed {
				continue // crash faults never halt; don't wait for them
			}
			if !st.proc.Done() {
				return false
			}
		}
		return true
	}
}

// Crashes returns the contained Step panics so far, in containment
// order (round, then node order within a round). The panic values are
// diagnostic only; the trace transcript records crashes as
// trace.KindNodeCrashed events without them.
func (n *Network) Crashes() []CrashRecord {
	out := make([]CrashRecord, len(n.crashes))
	copy(out, n.crashes)
	return out
}

// Crashed reports whether the process with the given id was converted
// into a crash fault by panic containment.
func (n *Network) Crashed(id ids.ID) bool {
	st, ok := n.procs[id]
	return ok && st.crashed
}
