package simnet

import (
	"errors"
	"fmt"
	"sort"

	"uba/internal/ids"
	"uba/internal/trace"
)

// Errors returned by the network.
var (
	// ErrMaxRounds reports that Run's stop predicate was not satisfied
	// within Config.MaxRounds rounds.
	ErrMaxRounds = errors.New("simnet: round limit exceeded")
	// ErrDuplicateID reports an attempt to register two processes with
	// the same identifier.
	ErrDuplicateID = errors.New("simnet: duplicate process id")
	// ErrContactRule reports a unicast from a correct process to a node
	// that never messaged it, which the paper's model forbids.
	ErrContactRule = errors.New("simnet: unicast to unknown contact")
)

// Config parameterizes a Network.
type Config struct {
	// MaxRounds bounds Run; 0 means DefaultMaxRounds. Protocols in this
	// repository terminate in O(n) rounds, so the bound exists only to
	// turn a protocol bug into a test failure instead of a hang.
	MaxRounds int
	// Concurrent selects the pooled worker runner instead of the
	// sequential one. Both produce identical executions.
	Concurrent bool
	// EnforceContactRule makes the engine verify that correct processes
	// unicast only to nodes that previously messaged them. Violations
	// surface as an error from Run.
	EnforceContactRule bool
	// Collector, when non-nil, receives traffic accounting. Totals for a
	// round are flushed in one batch after the round's sends have been
	// validated and routed, so a round that aborts (e.g. on a contact
	// rule violation) contributes no traffic.
	Collector *trace.Collector
	// EventLog, when non-nil, records a message-level transcript of
	// every delivery (for debugging and the ubasim -trace flag). The
	// canonical transcript order is receiver-major: per round,
	// deliveries are grouped by receiver in ascending node order, each
	// receiver's messages in its inbox order. Both runners produce the
	// same transcript for any worker count (per-shard event buffers are
	// merged in receiver order; see route.go).
	EventLog *trace.EventLog
}

// DefaultMaxRounds is the Run bound used when Config.MaxRounds is zero.
const DefaultMaxRounds = 10_000

type procState struct {
	proc Process
	// id is the identifier the process registered with. The engine
	// stamps it as the sender on every queued message (rather than
	// re-asking proc.ID() each round), which both drops an interface
	// call from the hot path and guarantees the per-sender grouping the
	// block-local route sort relies on.
	id        ids.ID
	byzantine bool
	inbox     []Received
	// contacts is the set of nodes that have delivered a message to
	// this process, used for the contact rule. It is nil (and not
	// maintained) unless Config.EnforceContactRule is set.
	contacts map[ids.ID]struct{}

	// Round-scoped scratch, recycled across rounds (see the package
	// docs for the retention contract this imposes on Process.Step).
	env     RoundEnv
	sendBuf []send
}

// stepResult is one process's contribution to a round, produced by either
// runner and merged in node order.
type stepResult struct {
	sends []send
	err   error
}

// Network owns a set of processes and runs them in lock-step rounds.
// Methods are not safe for concurrent use; drive a Network from one
// goroutine (the concurrent runner parallelizes internally).
type Network struct {
	cfg   Config
	procs map[ids.ID]*procState
	order []ids.ID     // live process ids, sorted ascending
	live  []*procState // states aligned with order
	round int
	err   error

	// Round-scoped scratch reused across rounds to keep the hot path
	// allocation-free in steady state.
	outs         []send
	results      []stepResult
	bcastDigests []uint64
	bcastEncs    []string

	// Routing scratch (see route.go): the done snapshot, the surviving
	// broadcast indices, the per-receiver unicast buckets, the exact
	// per-receiver arena offsets, the shared inbox arena, and the
	// per-shard delivery state.
	doneMask  []bool
	bcastIdx  []int32
	uniRecv   []int32
	uniSend   []int32
	uniIdx    []int32
	uniStart  []int32
	uniCursor []int32
	inboxOff  []int
	arena     []Received
	arenaLive int
	shards    []routeShard

	pool *workerPool // lazily started by the concurrent runner
}

// New returns an empty network.
func New(cfg Config) *Network {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	return &Network{
		cfg:   cfg,
		procs: make(map[ids.ID]*procState),
	}
}

// Add registers a correct process. It must be called before the first
// round or between rounds (a node joining a dynamic network joins at a
// round boundary, per the paper's dynamic model).
func (n *Network) Add(p Process) error { return n.add(p, false) }

// AddByzantine registers a Byzantine process. Byzantine processes are
// exempt from the contact rule: the paper allows a Byzantine node to
// behave as if it already knows all the nodes.
func (n *Network) AddByzantine(p Process) error { return n.add(p, true) }

func (n *Network) add(p Process, byzantine bool) error {
	id := p.ID()
	if id == ids.None {
		return fmt.Errorf("simnet: process id must be nonzero")
	}
	if _, exists := n.procs[id]; exists {
		return fmt.Errorf("%w: %v", ErrDuplicateID, id)
	}
	st := &procState{
		proc:      p,
		id:        id,
		byzantine: byzantine,
	}
	if n.cfg.EnforceContactRule {
		st.contacts = make(map[ids.ID]struct{})
	}
	n.procs[id] = st
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order, 0)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = id
	n.live = append(n.live, nil)
	copy(n.live[i+1:], n.live[i:])
	n.live[i] = st
	return nil
}

// Remove detaches a process from the network (a node that has left a
// dynamic network). Pending messages to it are dropped.
func (n *Network) Remove(id ids.ID) {
	if _, ok := n.procs[id]; !ok {
		return
	}
	delete(n.procs, id)
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	if i < len(n.order) && n.order[i] == id {
		n.order = append(n.order[:i], n.order[i+1:]...)
		n.live = append(n.live[:i], n.live[i+1:]...)
	}
}

// Round returns the number of rounds executed so far.
func (n *Network) Round() int { return n.round }

// Size returns the number of registered (not yet removed) processes.
func (n *Network) Size() int { return len(n.order) }

// IDs returns the live process ids in ascending order.
func (n *Network) IDs() []ids.ID {
	out := make([]ids.ID, len(n.order))
	copy(out, n.order)
	return out
}

// Process returns the registered process with the given id, or nil.
func (n *Network) Process(id ids.ID) Process {
	st, ok := n.procs[id]
	if !ok {
		return nil
	}
	return st.proc
}

// RunRound executes exactly one round: step every live, non-done process
// with its inbox, then route the produced messages for delivery at the
// start of the next round. Traffic accounting is batched: one Collector
// flush per successful round, nothing for an aborted one.
func (n *Network) RunRound() error {
	if n.err != nil {
		return n.err
	}
	n.round++

	var outs []send
	var sends int64
	var err error
	if n.cfg.Concurrent {
		outs, sends, err = n.stepConcurrent()
	} else {
		outs, sends, err = n.stepSequential()
	}
	if err != nil {
		n.err = err
		return err
	}
	deliveries, bytes := n.route(outs)
	if n.cfg.Collector != nil {
		n.cfg.Collector.AddRound(n.round, sends, deliveries, bytes)
	}
	return nil
}

func (n *Network) stepSequential() ([]send, int64, error) {
	outs := n.outs[:0]
	var sends int64
	for _, st := range n.live {
		s, err := n.stepOne(st)
		if err != nil {
			return nil, 0, err
		}
		sends += int64(len(s))
		outs = append(outs, s...)
	}
	n.outs = outs
	return outs, sends, nil
}

// stepConcurrent fans the live processes out over the persistent worker
// pool (started on first use) and merges the per-process send buffers in
// node order, so the resulting outs slice is byte-identical to the
// sequential runner's.
func (n *Network) stepConcurrent() ([]send, int64, error) {
	if n.pool == nil {
		n.startPool()
	}
	if cap(n.results) < len(n.live) {
		n.results = make([]stepResult, len(n.live))
	}
	results := n.results[:len(n.live)]
	n.pool.runRound(n, n.live, results)

	outs := n.outs[:0]
	var sends int64
	var firstErr error
	for i := range results {
		res := &results[i]
		if res.err != nil && firstErr == nil {
			firstErr = res.err // first error in node order, like the sequential runner
		}
		if firstErr == nil {
			sends += int64(len(res.sends))
			outs = append(outs, res.sends...)
		}
		// Clear every slot even on the error path: a stale slot would
		// keep its sends slice — and the payloads it references — alive
		// across rounds after the network latched the error.
		res.sends = nil
	}
	n.outs = outs
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return outs, sends, nil
}

// stepOne steps a single process with its pending inbox. It is safe to
// call concurrently for distinct processes: it touches only st and the
// immutable parts of n.
func (n *Network) stepOne(st *procState) ([]send, error) {
	inbox := st.inbox
	// The inbox segment points into the round arena, which route()
	// overwrites wholesale next round — this is what forbids
	// Process.Step from retaining env.Inbox.
	st.inbox = nil
	if st.proc.Done() {
		return nil, nil
	}
	st.env = RoundEnv{
		Round: n.round,
		Inbox: inbox,
		self:  st.id,
		sends: st.sendBuf[:0],
	}
	st.proc.Step(&st.env)
	sends := st.env.sends
	st.sendBuf = sends
	st.env.Inbox = nil
	if st.contacts != nil && !st.byzantine {
		for i := range sends {
			s := &sends[i]
			if s.to == ids.None {
				continue
			}
			if _, known := st.contacts[s.to]; !known {
				return nil, fmt.Errorf("%w: %v -> %v in round %d",
					ErrContactRule, s.from, s.to, n.round)
			}
		}
	}
	return sends, nil
}

// Run executes rounds until stop returns true (checked after every round)
// or the round limit is reached, and returns the number of rounds run.
func (n *Network) Run(stop func(*Network) bool) (int, error) {
	start := n.round
	for n.round-start < n.cfg.MaxRounds {
		if err := n.RunRound(); err != nil {
			return n.round - start, err
		}
		if stop(n) {
			return n.round - start, nil
		}
	}
	return n.round - start, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, n.cfg.MaxRounds)
}

// AllDone returns a stop predicate that is satisfied when every process
// with one of the given ids reports Done. Use it to wait for the correct
// nodes while Byzantine processes keep running.
func AllDone(waitFor []ids.ID) func(*Network) bool {
	return func(n *Network) bool {
		for _, id := range waitFor {
			st, ok := n.procs[id]
			if !ok {
				continue // removed processes count as finished
			}
			if !st.proc.Done() {
				return false
			}
		}
		return true
	}
}
