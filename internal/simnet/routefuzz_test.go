package simnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"uba/internal/ids"
	"uba/internal/wire"
)

// This file checks the route() dedup/delivery pipeline against a naive
// per-receiver map-based reference implementation on randomized send
// batches: broadcast/unicast mixes, exact duplicates, unicasts
// shadowed by same-sender broadcasts, unknown and halted targets, and
// forced equal-digest-different-encoding pairs (the 64-bit collision
// fallback). Each batch is routed on the sequential single-shard path
// and on forced multi-worker pools, so the sharded delivery path is
// exercised even on a single-core host.

// routePool is a fixed set of distinct payloads whose digests are
// deliberately made to collide pairwise (digest = pool index mod 2),
// while staying consistent per encoding — the invariant the engine
// maintains (digest is a pure function of the encoding). Collisions
// must be resolved by the full-encoding fallback, never by dropping a
// distinct message.
type routePool struct {
	payloads []wire.Payload
	encs     []string
	digests  []uint64
}

func newRoutePool() *routePool {
	p := &routePool{}
	for i := 0; i < 6; i++ {
		pl := wire.Event{Round: 1, Body: []byte(fmt.Sprintf("payload-%d", i))}
		p.payloads = append(p.payloads, pl)
		p.encs = append(p.encs, string(wire.Encode(pl)))
		p.digests = append(p.digests, uint64(i%2)+1)
	}
	return p
}

func (p *routePool) send(from, to ids.ID, pi int) send {
	return send{
		from:    from,
		to:      to,
		payload: p.payloads[pi],
		encoded: p.encs[pi],
		digest:  p.digests[pi],
	}
}

// routeCase is one generated batch: the registered nodes, which of
// them have halted, and the send stream (grouped by sender in
// ascending node order with engine-stamped from — the invariant both
// runners establish before calling route).
type routeCase struct {
	nodeIDs []ids.ID
	done    []bool
	outs    []send
}

// genRouteCase draws a random batch. Unicast targets include a never-
// registered id (dropped) and halted nodes (dropped); payload choices
// are drawn from the small pool so duplicates of every class occur.
func genRouteCase(rng *rand.Rand, pool *routePool) routeCase {
	n := 3 + rng.Intn(6)
	c := routeCase{
		nodeIDs: ids.Consecutive(10, n),
		done:    make([]bool, n),
	}
	for i := range c.done {
		c.done[i] = rng.Intn(5) == 0
	}
	targets := append([]ids.ID(nil), c.nodeIDs...)
	targets = append(targets, 9999) // unknown node: unicasts to it vanish
	for i, id := range c.nodeIDs {
		if c.done[i] {
			continue // halted processes are not stepped and send nothing
		}
		for k := rng.Intn(6); k > 0; k-- {
			pi := rng.Intn(len(pool.payloads))
			if rng.Intn(5) < 2 {
				c.outs = append(c.outs, pool.send(id, ids.None, pi))
			} else {
				c.outs = append(c.outs, pool.send(id, targets[rng.Intn(len(targets))], pi))
			}
		}
	}
	return c
}

// referenceRoute is the naive model: per receiver, scan every send,
// keep those addressed to it (broadcast or direct), dedup by
// (sender, encoding) with a map, then sort by (sender, encoding) —
// the documented inbox contract — and total the accounting.
func referenceRoute(c routeCase) (inboxes [][]Received, deliveries, bytes int64) {
	inboxes = make([][]Received, len(c.nodeIDs))
	for i, id := range c.nodeIDs {
		if c.done[i] {
			continue
		}
		type key struct {
			from ids.ID
			enc  string
		}
		seen := make(map[key]send)
		var keys []key
		for _, s := range c.outs {
			if s.to != ids.None && s.to != id {
				continue
			}
			k := key{s.from, s.encoded}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = s
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].from != keys[b].from {
				return keys[a].from < keys[b].from
			}
			return keys[a].enc < keys[b].enc
		})
		for _, k := range keys {
			s := seen[k]
			inboxes[i] = append(inboxes[i], Received{From: s.from, Payload: s.payload, encoded: s.encoded})
			deliveries++
			bytes += int64(len(s.encoded))
		}
	}
	return inboxes, deliveries, bytes
}

// routeOnNetwork builds a network for the case, forces the requested
// worker count (0 = sequential single-shard), routes a copy of the
// batch, and returns the network with its resulting inbox views and
// tallies. The caller Closes the network — the views read through the
// network's shared block and arena, which Close clears and recycles.
func routeOnNetwork(t testing.TB, c routeCase, workers int) (net *Network, inboxes []Inbox, deliveries, bytes int64) {
	t.Helper()
	net = New(Config{})
	if workers > 0 {
		net.forceWorkers(workers)
	}
	recs := make([]*recorder, len(c.nodeIDs))
	for i, id := range c.nodeIDs {
		recs[i] = newRecorder(id)
		recs[i].done = c.done[i]
		if err := net.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	outs := append([]send(nil), c.outs...)
	deliveries, bytes = net.route(outs)
	inboxes = make([]Inbox, len(c.nodeIDs))
	for i := range c.nodeIDs {
		inboxes[i] = net.live[i].inbox
	}
	return net, inboxes, deliveries, bytes
}

// checkRouteCase routes the case through the engine and compares the
// lazy inbox views against the fully-materialized reference on every
// access path a Process can use: Len, iteration order through All,
// random access through At (every position), and the Slice copy-out.
// Tallies must match too — the engine computes them arithmetically from
// the shared block, the reference by walking every delivery.
func checkRouteCase(t testing.TB, c routeCase, workers int) {
	t.Helper()
	wantInboxes, wantDeliveries, wantBytes := referenceRoute(c)
	net, gotInboxes, gotDeliveries, gotBytes := routeOnNetwork(t, c, workers)
	defer net.Close()
	if gotDeliveries != wantDeliveries || gotBytes != wantBytes {
		t.Fatalf("workers=%d: tallies (%d, %d), reference (%d, %d)\ncase: %+v",
			workers, gotDeliveries, gotBytes, wantDeliveries, wantBytes, c)
	}
	sameReceived := func(got, want Received) bool {
		return got.From == want.From && got.encoded == want.encoded &&
			reflect.DeepEqual(got.Payload, want.Payload)
	}
	for i := range c.nodeIDs {
		view, want := gotInboxes[i], wantInboxes[i]
		if view.Len() != len(want) {
			t.Fatalf("workers=%d receiver %v: Len() = %d, reference %d\nwant: %+v\ncase: %+v",
				workers, c.nodeIDs[i], view.Len(), len(want), want, c)
		}
		j := 0
		for got := range view.All() {
			if !sameReceived(got, want[j]) {
				t.Fatalf("workers=%d receiver %v All() message %d: %+v, reference %+v\ncase: %+v",
					workers, c.nodeIDs[i], j, got, want[j], c)
			}
			j++
		}
		if j != len(want) {
			t.Fatalf("workers=%d receiver %v: All() yielded %d messages, reference %d",
				workers, c.nodeIDs[i], j, len(want))
		}
		for j := range want {
			if got := view.At(j); !sameReceived(got, want[j]) {
				t.Fatalf("workers=%d receiver %v At(%d): %+v, reference %+v\ncase: %+v",
					workers, c.nodeIDs[i], j, got, want[j], c)
			}
		}
		if got := view.Slice(); len(got) != len(want) {
			t.Fatalf("workers=%d receiver %v: Slice() has %d messages, reference %d",
				workers, c.nodeIDs[i], len(got), len(want))
		}
		// The unicast side hands every receiver an exactly-sized
		// segment; growth would mean the bucketing pass and the
		// delivery pass disagree.
		if len(view.uni) != cap(view.uni) {
			t.Fatalf("workers=%d receiver %v: unicast segment len %d != cap %d (segment resized)",
				workers, c.nodeIDs[i], len(view.uni), cap(view.uni))
		}
	}
}

// TestRouteDedupMatchesReference is the property test: random batches
// against the reference model, on the sequential path and on forced
// 3- and 5-worker pools.
func TestRouteDedupMatchesReference(t *testing.T) {
	t.Parallel()
	pool := newRoutePool()
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		c := genRouteCase(rand.New(rand.NewSource(int64(seed))), pool)
		for _, workers := range []int{0, 3, 5} {
			checkRouteCase(t, c, workers)
		}
	}
}

// TestRouteDedupDirectedCases pins the duplicate classes the sort-based
// dedup argument enumerates, including the digest-collision fallback.
func TestRouteDedupDirectedCases(t *testing.T) {
	t.Parallel()
	pool := newRoutePool()
	// Pool entries 0 and 2 share a digest but differ in encoding: the
	// collision pair. Entries 0/0 are exact duplicates.
	nodes := ids.Consecutive(10, 4)
	cases := []routeCase{
		{ // colliding-digest broadcasts from one sender: both deliver
			nodeIDs: nodes, done: make([]bool, 4),
			outs: []send{pool.send(10, ids.None, 0), pool.send(10, ids.None, 2)},
		},
		{ // unicast colliding with a broadcast digest: not a duplicate
			nodeIDs: nodes, done: make([]bool, 4),
			outs: []send{pool.send(10, ids.None, 0), pool.send(10, 11, 2)},
		},
		{ // unicast duplicating a broadcast exactly: dropped
			nodeIDs: nodes, done: make([]bool, 4),
			outs: []send{pool.send(10, ids.None, 0), pool.send(10, 11, 0)},
		},
		{ // exact duplicate broadcasts and unicasts
			nodeIDs: nodes, done: make([]bool, 4),
			outs: []send{
				pool.send(10, ids.None, 1), pool.send(10, ids.None, 1),
				pool.send(10, 12, 3), pool.send(10, 12, 3),
			},
		},
		{ // same payload from different senders: distinct for receivers
			nodeIDs: nodes, done: make([]bool, 4),
			outs: []send{pool.send(10, ids.None, 0), pool.send(11, ids.None, 0)},
		},
		{ // unicasts to unknown and halted targets vanish
			nodeIDs: nodes, done: []bool{false, false, false, true},
			outs: []send{pool.send(10, 9999, 0), pool.send(10, 13, 1), pool.send(10, 11, 2)},
		},
	}
	for i, c := range cases {
		for _, workers := range []int{0, 3} {
			t.Run(fmt.Sprintf("case=%d/workers=%d", i, workers), func(t *testing.T) {
				checkRouteCase(t, c, workers)
			})
		}
	}
}

// FuzzRouteDedup drives the same reference check from fuzzer-chosen
// bytes: each byte pair picks a sender action, so the fuzzer can steer
// the batch shape (duplicate clusters, broadcast storms, dead targets).
func FuzzRouteDedup(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x42, 0x42, 0x99, 0x07})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0x80, 0x40, 0x20, 0x10})
	pool := newRoutePool()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		n := 3 + int(data[0]%6)
		c := routeCase{nodeIDs: ids.Consecutive(10, n), done: make([]bool, n)}
		for i := range c.done {
			c.done[i] = i < len(data) && data[i]&0x11 == 0x11
		}
		targets := append([]ids.ID(nil), c.nodeIDs...)
		targets = append(targets, 9999)
		pos := 1
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := int(data[pos])
			pos++
			return b
		}
		for i, id := range c.nodeIDs {
			if c.done[i] {
				continue
			}
			for k := next() % 5; k > 0; k-- {
				pi := next() % len(pool.payloads)
				if next()%3 == 0 {
					c.outs = append(c.outs, pool.send(id, ids.None, pi))
				} else {
					c.outs = append(c.outs, pool.send(id, targets[next()%len(targets)], pi))
				}
			}
		}
		for _, workers := range []int{0, 3} {
			checkRouteCase(t, c, workers)
		}
	})
}
