package simnet

import (
	"math/rand"
	"strings"
	"testing"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// wirePayload builds a distinct fixed-size payload per tag.
func wirePayload(i int) wire.Payload {
	return wire.Event{Round: uint64(i), Body: []byte{1}}
}

func encodedPayload(i int) []byte { return wire.Encode(wirePayload(i)) }

// This file tests the fault-containment layer: panic-to-crash-fault
// conversion, per-node per-round send/byte quotas, and the round
// observer feed. The cross-worker-count determinism of containment is
// asserted by the "panicky" workload in determinism_test.go and by the
// facade-level matrix in runner_equivalence_test.go.

// panicAt is a chatter-like process whose Step panics in a chosen round.
type panicAt struct {
	ChatterProcess
	Round int
}

func (p *panicAt) Step(env *RoundEnv) {
	if env.Round == p.Round {
		// Queue a send first so containment must also discard the
		// crashing round's partial output.
		env.Broadcast(wirePayload(env.Round))
		panic("injected step fault")
	}
	p.ChatterProcess.Step(env)
}

// flood queues `count` distinct unicasts to every peer each round — the
// amplification workload the quotas must contain.
type flood struct {
	Ident ids.ID
	Peers []ids.ID
	Count int
}

func (f *flood) ID() ids.ID { return f.Ident }
func (f *flood) Done() bool { return false }
func (f *flood) Step(env *RoundEnv) {
	for i := 0; i < f.Count; i++ {
		for _, to := range f.Peers {
			env.Send(to, wirePayload(env.Round*1000+i))
		}
	}
}

// recorder captures the observer feed.
type roundRecorder struct {
	rounds []int
	events [][]trace.Event
}

func (r *roundRecorder) ObserveRound(round int, events []trace.Event) {
	r.rounds = append(r.rounds, round)
	cp := make([]trace.Event, len(events))
	copy(cp, events)
	r.events = append(r.events, cp)
}

func TestPanicContainedAsCrashFault(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	nodeIDs := ids.Sparse(rng, 5)
	log := trace.NewEventLog(0)
	net := New(Config{MaxRounds: 20, EventLog: log})
	victim := nodeIDs[2]
	for _, id := range nodeIDs {
		var p Process
		if id == victim {
			p = &panicAt{ChatterProcess: ChatterProcess{Ident: id}, Round: 3}
		} else {
			p = &ChatterProcess{Ident: id}
		}
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := net.RunRound(); err != nil {
			t.Fatalf("round %d: containment failed: %v", i+1, err)
		}
	}

	// The crash is recorded with the panic value.
	crashes := net.Crashes()
	if len(crashes) != 1 {
		t.Fatalf("crashes = %+v, want exactly one", crashes)
	}
	if crashes[0].Node != victim || crashes[0].Round != 3 {
		t.Fatalf("crash = %+v, want node %v round 3", crashes[0], victim)
	}
	if !strings.Contains(crashes[0].Reason, "injected step fault") {
		t.Fatalf("crash reason %q missing panic value", crashes[0].Reason)
	}
	if !net.Crashed(victim) {
		t.Fatal("Crashed(victim) = false")
	}

	// Exactly one NodeCrashed event, in round 3, and the crashed node
	// neither sends nor receives from round 3 on.
	var crashEvents, victimSendsAfter, victimRecvAfter int
	for _, e := range log.Events() {
		if e.Kind == trace.KindNodeCrashed {
			crashEvents++
			if e.Round != 3 || e.From != uint64(victim) {
				t.Fatalf("crash event %+v, want round 3 node %v", e, victim)
			}
			continue
		}
		// A delivery in round r was sent in round r-1, so anything the
		// victim sent in its crash round (3) or later would surface as
		// a delivery with Round > 3 — including the partial queue of
		// the crashing Step, which containment must discard.
		if e.Round > 3 && e.From == uint64(victim) {
			victimSendsAfter++
		}
		if e.Round > 3 && e.To == uint64(victim) {
			victimRecvAfter++
		}
	}
	if crashEvents != 1 {
		t.Fatalf("NodeCrashed events = %d, want 1", crashEvents)
	}
	if victimSendsAfter != 0 || victimRecvAfter != 0 {
		t.Fatalf("crashed node still active: %d sends, %d deliveries after crash",
			victimSendsAfter, victimRecvAfter)
	}

	// AllDone treats the crash fault as finished (everyone else here
	// never halts, so only the victim matters).
	if !AllDone([]ids.ID{victim})(net) {
		t.Fatal("AllDone should count a crashed node as finished")
	}
}

func TestSendQuotaContainsFlood(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	nodeIDs := ids.Sparse(rng, 4)
	log := trace.NewEventLog(0)
	col := &trace.Collector{}
	net := New(Config{MaxRounds: 10, EventLog: log, Collector: col, SendQuota: 3})
	flooder := nodeIDs[0]
	for _, id := range nodeIDs {
		var p Process
		if id == flooder {
			p = &flood{Ident: id, Peers: nodeIDs, Count: 5} // 20 sends/round, quota 3
		} else {
			p = &ChatterProcess{Ident: id}
		}
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}

	var quotaEvents int
	for _, e := range log.Events() {
		if e.Kind == trace.KindQuotaDrop {
			quotaEvents++
			if e.From != uint64(flooder) {
				t.Fatalf("quota event for %d, want flooder %v", e.From, flooder)
			}
			if e.Size != 17 { // 20 queued - 3 quota
				t.Fatalf("quota event dropped %d, want 17", e.Size)
			}
		}
	}
	if quotaEvents != 1 {
		t.Fatalf("quota events = %d, want 1", quotaEvents)
	}
	// Accounting reflects the post-quota stream: 3 flooder sends + 3
	// chatter broadcasts.
	if got := col.Report().Sends; got != 6 {
		t.Fatalf("sends = %d, want 6 (quota applied before accounting)", got)
	}
}

func TestByteQuotaPrefixPolicy(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	nodeIDs := ids.Sparse(rng, 3)
	enc := len(encodedPayload(1))
	log := trace.NewEventLog(0)
	// Budget for exactly two encoded payloads per node per round.
	net := New(Config{MaxRounds: 10, EventLog: log, ByteQuota: int64(2 * enc)})
	for _, id := range nodeIDs {
		if err := net.Add(&flood{Ident: id, Peers: nodeIDs[:1], Count: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RunRound(); err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Events() {
		if e.Kind == trace.KindQuotaDrop && e.Size != 2 {
			t.Fatalf("byte quota dropped %d sends, want 2 (prefix of 4)", e.Size)
		}
	}
}

func TestObserverFeedMatchesEventLog(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	nodeIDs := ids.Sparse(rng, 5)
	log := trace.NewEventLog(0)
	rec := &roundRecorder{}
	net := New(Config{MaxRounds: 20, EventLog: log, Observer: rec})
	victim := nodeIDs[1]
	for _, id := range nodeIDs {
		var p Process
		if id == victim {
			p = &panicAt{ChatterProcess: ChatterProcess{Ident: id}, Round: 2}
		} else {
			p = &ChatterProcess{Ident: id}
		}
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := net.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.rounds) != 4 {
		t.Fatalf("observer saw %d rounds, want 4", rec.rounds)
	}
	// Concatenating the per-round observer feeds reproduces the full
	// event log: same events, same order.
	var all []trace.Event
	for _, ev := range rec.events {
		all = append(all, ev...)
	}
	want := log.Events()
	if len(all) != len(want) {
		t.Fatalf("observer fed %d events, log has %d", len(all), len(want))
	}
	for i := range all {
		if all[i] != want[i] {
			t.Fatalf("event %d differs:\n  observer: %+v\n  log:      %+v", i, all[i], want[i])
		}
	}
	// Delivered events expose the canonical encoding for monitors.
	for _, e := range all {
		if e.Kind != trace.KindNodeCrashed && e.Kind != trace.KindQuotaDrop && e.Enc == "" {
			t.Fatalf("delivery event missing Enc: %+v", e)
		}
	}
}
