// Package simnet is the synchronous message-passing substrate of the
// reproduction: a lock-step round simulator implementing exactly the
// communication model of the paper.
//
// Model rules enforced by the engine:
//
//   - Computation proceeds in rounds. Messages sent in round r are
//     delivered at the start of round r+1.
//   - A process can broadcast to all nodes (including itself and nodes it
//     has never heard of) or unicast to a specific node. For correct
//     processes the engine can verify the paper's contact rule: unicast
//     only to a node that has previously sent the sender a message.
//   - The sender identifier on every delivered message is stamped by the
//     engine, so a Byzantine node cannot forge its identifier when
//     communicating directly (it can still lie arbitrarily in message
//     contents).
//   - Duplicate messages from the same node within one round are
//     discarded by the receiver. Filtering is keyed on a 64-bit digest of
//     the canonical wire encoding, computed once at send time; digest
//     collisions fall back to comparing the full encodings, so the
//     filter is exact.
//
// # Fault containment
//
// The engine is a graceful-degradation layer: misbehavior of one
// process must not take down the run.
//
//   - A panic inside Process.Step is recovered and the node converted
//     into a deterministic crash fault: its crashing round produces no
//     sends, it is never stepped again, and it receives no further
//     messages. The transcript records a trace.KindNodeCrashed event;
//     Network.Crashes carries the panic values for debugging. Recovery
//     happens inside the per-node step task, before the node-order
//     merge, so transcripts stay byte-identical across worker counts.
//   - Config.SendQuota and Config.ByteQuota bound what one node can
//     queue per round. The drop policy is deterministic (the longest
//     queue prefix within budget survives) and recorded as a
//     trace.KindQuotaDrop event — the valve that contains Byzantine
//     amplification floods.
//   - Config.Observer receives each round's trace events at the round
//     boundary, the feed for the online safety oracles in
//     internal/oracle.
//
// Two runners execute the same process state machines: a deterministic
// sequential runner and a persistent worker-pool runner that shards
// both halves of a round — the step phase over nodes and the
// route/delivery phase over receivers — with a barrier between them.
// Both produce byte-identical executions, which the test suite asserts.
// The determinism argument: (1) pooled workers write each node's sends
// into a per-node slot and the merge reads slots in node order, so the
// routed send stream is independent of worker scheduling; (2) routing
// decisions (sort, dedup, arena sizing) all happen in a single
// deterministic prepare pass before any worker runs; (3) each delivery
// worker owns a contiguous, disjoint range of receivers — inbox
// segments, contact sets, event buffers, and traffic tallies are all
// per-shard — and shard boundaries depend only on the worker count and
// receiver count, never on timing; (4) per-shard results are reduced in
// shard order, which is receiver order, so transcripts and reports are
// identical for every worker count (including the sequential runner,
// which is the one-shard instance of the same pipeline).
//
// # Sparse delivery and the buffer-recycling contract
//
// A broadcast is stored once per round, not once per receiver: the
// route pass materializes the round's surviving broadcasts into one
// shared broadcast block and each receiver's unicasts into a private
// segment of one unicast arena, so per-round storage is O(B + U)
// (B = surviving broadcasts, U = unicast deliveries) instead of the
// n·B of a fully materialized fan-out. Each inbox is an Inbox view —
// a lazy merge of the shared block with the receiver's segment — and
// the merge order reproduces the documented (sender, encoding) order
// exactly, so transcripts and dedup semantics are independent of the
// storage strategy.
//
// The engine recycles those round-scoped buffers aggressively: the
// RoundEnv passed to Process.Step, the broadcast block and unicast
// arena its Inbox view reads through, and the internal send buffers
// are all rewritten on the next round. Process.Step therefore MUST NOT
// retain env, env.Inbox, or an iterator obtained from env.Inbox.All()
// past the call. Copy individual Received values out (env.Inbox.At, a
// range over env.Inbox.All(), or env.Inbox.Slice) if state must
// survive the round; the values themselves (sender id, payload,
// encoding) are safe to keep. The contract is machine-checked by the
// ubalint retainenv pass.
package simnet

import (
	"iter"

	"uba/internal/ids"
	"uba/internal/wire"
)

// Received is one delivered message: the payload plus the authenticated
// sender identifier stamped by the network.
type Received struct {
	// From is the true sender, attached by the engine (unforgeable).
	From ids.ID
	// Payload is the decoded message body.
	Payload wire.Payload
	// encoded is the canonical encoding, retained for deterministic
	// ordering and duplicate filtering.
	encoded string
	// bcast marks a delivery that was part of a broadcast fan-out. It
	// is carried on the value (not derived from which arena holds it)
	// because fault-plan rounds demote broadcasts into per-receiver
	// arena entries; the transcript's Broadcast flag must survive that.
	bcast bool
}

// Size returns the encoded size of the message in bytes.
func (m Received) Size() int { return len(m.encoded) }

// send is a queued outbound message. to == ids.None means broadcast.
type send struct {
	from    ids.ID
	to      ids.ID
	payload wire.Payload
	encoded string
	// digest is a 64-bit FNV-1a hash of encoded, computed once at
	// Broadcast/Send time and used for duplicate filtering (with a
	// full-encoding fallback on collision).
	digest uint64
}

// FNV-1a constants (hash/fnv, inlined so the hot path hashes the encoded
// bytes without constructing a hash.Hash64).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// digest64 returns the FNV-1a hash of b.
//
//lint:noalloc inlined FNV-1a so send-time hashing constructs no hash.Hash64
func digest64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Inbox is a read-only view of the messages delivered to one receiver
// at the start of a round: a lazy merge of the round's shared broadcast
// block with the receiver's private unicast segment. The merged order
// is by sender id and then by canonical encoding (deterministic for
// both runners), and duplicates from the same sender have already been
// discarded — identical to the fully materialized inboxes it replaced,
// without the O(n·B) copies.
//
// An Inbox (and any iterator from All) is valid only until the Step
// call it was delivered to returns: the engine rewrites the backing
// block and arena when routing the next round (see the package docs).
// Individual Received values read through At, All, or Slice are plain
// copies and safe to keep.
type Inbox struct {
	// bcast is the round's shared broadcast block (every surviving
	// broadcast, in ascending send order), shared by all receivers;
	// bkeys holds the aligned global send indices the merge runs on.
	bcast []Received
	bkeys []int32
	// uni is this receiver's private unicast segment (ascending send
	// order); ukeys holds its aligned global send indices. Either side
	// may be empty, in which case its keys may be nil.
	uni   []Received
	ukeys []int32
}

// InboxOf returns an Inbox delivering exactly msgs in the given order —
// the constructor for tests and harnesses that drive a Process manually.
func InboxOf(msgs ...Received) Inbox {
	return Inbox{uni: msgs}
}

// Len returns the number of delivered messages.
//
//lint:noalloc a pair of len reads on the view's segments
func (in Inbox) Len() int { return len(in.bcast) + len(in.uni) }

// At returns the i-th delivered message in inbox order. It runs in
// O(log min(B, U)) — a binary search for the merge split — with O(1)
// fast paths when the inbox is all-broadcast or all-unicast.
//
//lint:valuecopy At returns a by-value Received copy that shares no round-scoped backing memory
//lint:noalloc the merge-split binary search indexes the view's existing segments
func (in Inbox) At(i int) Received {
	nb, nu := len(in.bcast), len(in.uni)
	if nu == 0 {
		return in.bcast[i]
	}
	if nb == 0 {
		return in.uni[i]
	}
	// Find b, the number of broadcast messages among the first i+1
	// merged elements: the smallest b with bkeys[b] > ukeys[k-b-1]
	// (keys are distinct global send indices, so the merge is strict).
	k := i + 1
	lo, hi := max(0, k-nu), min(k, nb)
	for lo < hi {
		b := (lo + hi) / 2
		if in.bkeys[b] < in.ukeys[k-b-1] {
			lo = b + 1
		} else {
			hi = b
		}
	}
	b := lo
	u := k - b
	// The i-th element is whichever side contributed the larger key.
	switch {
	case u == 0:
		return in.bcast[b-1]
	case b == 0:
		return in.uni[u-1]
	case in.bkeys[b-1] > in.ukeys[u-1]:
		return in.bcast[b-1]
	default:
		return in.uni[u-1]
	}
}

// All returns an iterator over the delivered messages in inbox order —
// the replacement for ranging over the old materialized slice:
//
//	for m := range env.Inbox.All() { ... }
//
// The iterator reads through the engine's recycled buffers and must not
// be retained past the Step call (the Received values it yields are
// safe to keep).
//
//lint:valuecopy the yielded Received values are by-value copies sharing no round-scoped memory; only the iterator closure itself aliases the inbox, and retaining an iter.Seq is outside the tracked shapes
func (in Inbox) All() iter.Seq[Received] {
	return func(yield func(Received) bool) {
		bi, nb := 0, len(in.bcast)
		ui, nu := 0, len(in.uni)
		for bi < nb || ui < nu {
			var m Received
			if ui >= nu || (bi < nb && in.bkeys[bi] < in.ukeys[ui]) {
				m = in.bcast[bi]
				bi++
			} else {
				m = in.uni[ui]
				ui++
			}
			if !yield(m) {
				return
			}
		}
	}
}

// Slice returns the delivered messages as a freshly allocated slice in
// inbox order. It materializes a copy — the convenience for tests and
// for the rare consumer that genuinely needs random access to an
// owned snapshot; hot paths should iterate with All instead. The
// returned slice is the caller's and safe to retain. (No //lint:valuecopy
// here: with All's yield values already fact-free, the analysis derives
// no flow on its own — the directive would be unused.)
func (in Inbox) Slice() []Received {
	out := make([]Received, 0, in.Len())
	for m := range in.All() {
		out = append(out, m)
	}
	return out
}

// RoundEnv is the view a process gets of one round: the messages delivered
// at the start of the round, and the ability to queue messages for
// delivery in the next round. A RoundEnv is valid only for the duration of
// the Step call it is passed to; the engine reuses both the env and the
// buffers behind its Inbox view on later rounds (see the package docs),
// so neither may be retained.
type RoundEnv struct {
	// Round is the 1-based global round number.
	Round int
	// Inbox is the view of the messages delivered this round, sorted by
	// sender id and then by canonical encoding (deterministic for both
	// runners). Duplicates from the same sender have been discarded.
	Inbox Inbox

	self  ids.ID
	sends []send
}

// Broadcast queues a message to every node in the system (including the
// sender itself), matching the paper's broadcast primitive.
func (env *RoundEnv) Broadcast(p wire.Payload) {
	enc := wire.Encode(p)
	env.sends = append(env.sends, send{
		from:    env.self,
		to:      ids.None,
		payload: p,
		encoded: string(enc),
		digest:  digest64(enc),
	})
}

// SendCount returns how many messages have been queued on this env so
// far (test instrumentation for driving a Process manually).
func (env *RoundEnv) SendCount() int { return len(env.sends) }

// Send queues a point-to-point message to a specific node.
func (env *RoundEnv) Send(to ids.ID, p wire.Payload) {
	enc := wire.Encode(p)
	env.sends = append(env.sends, send{
		from:    env.self,
		to:      to,
		payload: p,
		encoded: string(enc),
		digest:  digest64(enc),
	})
}

// Process is a node state machine driven by the network: one Step call per
// round. Implementations must be self-contained (no shared mutable state
// with other processes) so that the pooled concurrent runner can step them
// in parallel, and must not retain env or env.Inbox past the Step call
// (the engine recycles both; see the package docs). Both contracts are
// machine-checked by the ubalint passes sharedstate and retainenv
// (internal/lint; run with `make lint`, documented in DESIGN.md §8).
type Process interface {
	// ID returns the node's unique identifier.
	ID() ids.ID
	// Step executes one round: read env.Inbox, update local state, queue
	// sends on env.
	Step(env *RoundEnv)
	// Done reports whether the process has terminated. Terminated
	// processes are no longer stepped and no longer receive messages,
	// matching a node that has halted.
	Done() bool
}
