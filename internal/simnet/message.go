// Package simnet is the synchronous message-passing substrate of the
// reproduction: a lock-step round simulator implementing exactly the
// communication model of the paper.
//
// Model rules enforced by the engine:
//
//   - Computation proceeds in rounds. Messages sent in round r are
//     delivered at the start of round r+1.
//   - A process can broadcast to all nodes (including itself and nodes it
//     has never heard of) or unicast to a specific node. For correct
//     processes the engine can verify the paper's contact rule: unicast
//     only to a node that has previously sent the sender a message.
//   - The sender identifier on every delivered message is stamped by the
//     engine, so a Byzantine node cannot forge its identifier when
//     communicating directly (it can still lie arbitrarily in message
//     contents).
//   - Duplicate messages from the same node within one round are
//     discarded by the receiver. Filtering is keyed on a 64-bit digest of
//     the canonical wire encoding, computed once at send time; digest
//     collisions fall back to comparing the full encodings, so the
//     filter is exact.
//
// # Fault containment
//
// The engine is a graceful-degradation layer: misbehavior of one
// process must not take down the run.
//
//   - A panic inside Process.Step is recovered and the node converted
//     into a deterministic crash fault: its crashing round produces no
//     sends, it is never stepped again, and it receives no further
//     messages. The transcript records a trace.KindNodeCrashed event;
//     Network.Crashes carries the panic values for debugging. Recovery
//     happens inside the per-node step task, before the node-order
//     merge, so transcripts stay byte-identical across worker counts.
//   - Config.SendQuota and Config.ByteQuota bound what one node can
//     queue per round. The drop policy is deterministic (the longest
//     queue prefix within budget survives) and recorded as a
//     trace.KindQuotaDrop event — the valve that contains Byzantine
//     amplification floods.
//   - Config.Observer receives each round's trace events at the round
//     boundary, the feed for the online safety oracles in
//     internal/oracle.
//
// Two runners execute the same process state machines: a deterministic
// sequential runner and a persistent worker-pool runner that shards
// both halves of a round — the step phase over nodes and the
// route/delivery phase over receivers — with a barrier between them.
// Both produce byte-identical executions, which the test suite asserts.
// The determinism argument: (1) pooled workers write each node's sends
// into a per-node slot and the merge reads slots in node order, so the
// routed send stream is independent of worker scheduling; (2) routing
// decisions (sort, dedup, arena sizing) all happen in a single
// deterministic prepare pass before any worker runs; (3) each delivery
// worker owns a contiguous, disjoint range of receivers — inbox
// segments, contact sets, event buffers, and traffic tallies are all
// per-shard — and shard boundaries depend only on the worker count and
// receiver count, never on timing; (4) per-shard results are reduced in
// shard order, which is receiver order, so transcripts and reports are
// identical for every worker count (including the sequential runner,
// which is the one-shard instance of the same pipeline).
//
// # Buffer-recycling contract
//
// The engine recycles round-scoped buffers aggressively: the RoundEnv
// passed to Process.Step, its Inbox slice, and the internal send buffers
// are all reused on the next round. In particular, every inbox is an
// exactly-sized segment of one arena shared by all receivers, and the
// arena is rewritten in place each round. Process.Step therefore MUST
// NOT retain env or env.Inbox (or any subslice of it) past the call.
// Copy individual Received values out if state must survive the round;
// the values themselves (sender id, payload, encoding) are safe to keep.
package simnet

import (
	"uba/internal/ids"
	"uba/internal/wire"
)

// Received is one delivered message: the payload plus the authenticated
// sender identifier stamped by the network.
type Received struct {
	// From is the true sender, attached by the engine (unforgeable).
	From ids.ID
	// Payload is the decoded message body.
	Payload wire.Payload
	// encoded is the canonical encoding, retained for deterministic
	// ordering and duplicate filtering.
	encoded string
}

// Size returns the encoded size of the message in bytes.
func (m Received) Size() int { return len(m.encoded) }

// send is a queued outbound message. to == ids.None means broadcast.
type send struct {
	from    ids.ID
	to      ids.ID
	payload wire.Payload
	encoded string
	// digest is a 64-bit FNV-1a hash of encoded, computed once at
	// Broadcast/Send time and used for duplicate filtering (with a
	// full-encoding fallback on collision).
	digest uint64
}

// FNV-1a constants (hash/fnv, inlined so the hot path hashes the encoded
// bytes without constructing a hash.Hash64).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// digest64 returns the FNV-1a hash of b.
func digest64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// RoundEnv is the view a process gets of one round: the messages delivered
// at the start of the round, and the ability to queue messages for
// delivery in the next round. A RoundEnv is valid only for the duration of
// the Step call it is passed to; the engine reuses both the env and its
// Inbox backing array on later rounds (see the package docs), so neither
// may be retained.
type RoundEnv struct {
	// Round is the 1-based global round number.
	Round int
	// Inbox holds the messages delivered this round, sorted by sender
	// id and then by canonical encoding (deterministic for both
	// runners). Duplicates from the same sender have been discarded.
	Inbox []Received

	self  ids.ID
	sends []send
}

// Broadcast queues a message to every node in the system (including the
// sender itself), matching the paper's broadcast primitive.
func (env *RoundEnv) Broadcast(p wire.Payload) {
	enc := wire.Encode(p)
	env.sends = append(env.sends, send{
		from:    env.self,
		to:      ids.None,
		payload: p,
		encoded: string(enc),
		digest:  digest64(enc),
	})
}

// SendCount returns how many messages have been queued on this env so
// far (test instrumentation for driving a Process manually).
func (env *RoundEnv) SendCount() int { return len(env.sends) }

// Send queues a point-to-point message to a specific node.
func (env *RoundEnv) Send(to ids.ID, p wire.Payload) {
	enc := wire.Encode(p)
	env.sends = append(env.sends, send{
		from:    env.self,
		to:      to,
		payload: p,
		encoded: string(enc),
		digest:  digest64(enc),
	})
}

// Process is a node state machine driven by the network: one Step call per
// round. Implementations must be self-contained (no shared mutable state
// with other processes) so that the pooled concurrent runner can step them
// in parallel, and must not retain env or env.Inbox past the Step call
// (the engine recycles both; see the package docs). Both contracts are
// machine-checked by the ubalint passes sharedstate and retainenv
// (internal/lint; run with `make lint`, documented in DESIGN.md §8).
type Process interface {
	// ID returns the node's unique identifier.
	ID() ids.ID
	// Step executes one round: read env.Inbox, update local state, queue
	// sends on env.
	Step(env *RoundEnv)
	// Done reports whether the process has terminated. Terminated
	// processes are no longer stepped and no longer receive messages,
	// matching a node that has halted.
	Done() bool
}
