package simnet

import (
	"fmt"
	"testing"
)

// TestRouteHotPathZeroAlloc is the runtime half of the //lint:noalloc
// contract on the round hot path: after the warm-up rounds that grow
// the recycled arenas to their high-water mark, a steady-state
// account + route pass must perform zero heap allocations per round,
// for both runners, across three network sizes.
//
// The plan=idle variants re-certify the same bound with a fault plan
// attached but never live: plan presence routes through the
// fault-aware branches (scratch resets, the keyed delivery copy), and
// those must be as allocation-free as the nil-plan path — attaching a
// FaultPlan may never cost a healthy round an allocation.
//
// The measured body is RouteOnly minus the Collector flush: AddRound
// appends one RoundStats to the report's per-round ledger every round,
// which is genuinely amortized O(1) allocation — the ledger is a
// product of the run, not round scratch — and is deliberately outside
// the noalloc certification (it carries no //lint:noalloc directive).
func TestRouteHotPathZeroAlloc(t *testing.T) {
	for _, plan := range []*FaultPlan{nil, {Seed: 1}} {
		label := "plan=nil"
		if plan != nil {
			label = "plan=idle"
		}
		for _, concurrent := range []bool{false, true} {
			for _, n := range []int{256, 1024, 4096} {
				t.Run(fmt.Sprintf("%s/concurrent=%v/n=%d", label, concurrent, n), func(t *testing.T) {
					rp, err := NewRoundPhasesPlan(n, concurrent, plan)
					if err != nil {
						t.Fatal(err)
					}
					defer rp.Close()
					// Warm-up: grow the broadcast block, unicast arena, shard
					// table and done mask to their steady-state sizes, and let
					// the runtime's channel/park caches populate for the
					// pooled runner.
					for i := 0; i < 3; i++ {
						rp.RouteOnly()
					}
					var deliveries, bcasts int64
					avg := testing.AllocsPerRun(100, func() {
						rp.net.round++
						outs := rp.scratch[:len(rp.template)]
						copy(outs, rp.template)
						acct := rp.net.accountRound(outs)
						deliveries, _ = rp.net.route(outs)
						bcasts = acct.Broadcasts
					})
					if deliveries != int64(n)*int64(n) || bcasts != int64(n) {
						t.Fatalf("fixture routed %d deliveries / %d broadcasts per round, want n^2 = %d / n = %d",
							deliveries, bcasts, int64(n)*int64(n), n)
					}
					if avg != 0 {
						t.Errorf("steady-state route at n=%d (concurrent=%v, %s) allocates %.2f times per round, want 0 — the //lint:noalloc contract is broken at runtime", n, concurrent, label, avg)
					}
				})
			}
		}
	}
}
