package simnet

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// This file is the round-scheduled fault-injection layer: a FaultPlan on
// Config schedules partitions, per-link loss/duplication/corruption,
// within-round reordering, crash/recover churn, late joins, and quota
// changes — all deterministic functions of (plan, round, send index,
// receiver), so a faulty execution replays bit-exactly for both runners
// and every worker count.
//
// Determinism argument. Plan events apply at the start of RunRound, on
// the driving goroutine, in (round, plan order) — before any worker
// runs. Link-level faults apply inside the serial routePrepare pass as a
// filter over the classified send stream, walked in global send-index
// order (broadcasts fanned per live receiver in node order), and every
// random decision is a stateless hash of (plan seed, fault kind, round,
// send index, receiver) — no shared PRNG stream, so dropping one fault
// event from a plan cannot shift the rolls of the remaining ones (what
// makes shrinking sound). Fault trace events are emitted during these
// serial passes and flushed in a fixed position of the round's record
// order: plan events, containment events, link events, deliveries.
//
// Zero cost when nil. Every hook is behind one `n.faults != nil` check;
// with a nil plan the round executes the exact certified hot path
// (//lint:noalloc holds, route rows stay 0 allocs/op). With a plan
// attached but no partition or rate rule live, the filter does not run
// either: the only added work is a handful of nil/flag checks.
//
// Model note. On a round with a live partition or rate rule the
// surviving broadcasts are demoted to per-receiver arena entries (the
// shared broadcast block cannot express per-receiver loss). The demoted
// entries are appended in global send-index order, so inbox order — and
// therefore the transcript — is unchanged; Received.bcast preserves the
// Broadcast flag. Duplicate and reorder faults deliberately violate the
// engine's documented dedup/order model rules: that is what makes them
// faults worth testing against.

// Fault event kinds, stable strings because they appear in plan JSON.
const (
	// FaultPartition splits the network into Groups: messages cross
	// group boundaries only from a node to itself. Nodes in no group
	// are isolated. A later partition replaces the current one.
	FaultPartition = "partition"
	// FaultHeal removes the current partition.
	FaultHeal = "heal"
	// FaultDrop activates a link loss rule: each matching delivery is
	// independently dropped with probability Rate.
	FaultDrop = "drop"
	// FaultDuplicate activates a link duplication rule: each matching
	// delivery is delivered twice within the round with probability
	// Rate (deliberately bypassing the receiver's dedup model rule).
	FaultDuplicate = "duplicate"
	// FaultReorder activates a per-receiver rule: with probability Rate
	// per round, the receiver's within-round unicast-order inbox is
	// deterministically shuffled. Scope with To or Node; From is
	// ignored for reorder rules.
	FaultReorder = "reorder"
	// FaultCorrupt activates a link corruption rule: with probability
	// Rate a matching delivery has one encoding bit flipped. If the
	// mutated encoding no longer decodes, the message is dropped.
	FaultCorrupt = "corrupt"
	// FaultCrash fail-stops Node at Round: it is silent and unreachable
	// until a later recover event.
	FaultCrash = "crash"
	// FaultRecover revives a crashed Node with an empty inbox.
	FaultRecover = "recover"
	// FaultJoin makes Node a late participant: before Round it neither
	// steps nor receives anything.
	FaultJoin = "join"
	// FaultQuota overwrites the per-round send/byte quotas at Round
	// (0 disables a quota, as in Config).
	FaultQuota = "quota"
)

// FaultEvent is one timed entry of a FaultPlan. Round is the 1-based
// round the event takes effect at (before that round's Step calls).
// Which other fields matter depends on Kind; unused fields are ignored.
type FaultEvent struct {
	Round int    `json:"round"`
	Kind  string `json:"kind"`
	// Groups names the partition's node groups (FaultPartition).
	// Ids unknown to the network are tolerated — they simply match no
	// node — so a shrunk scenario with fewer nodes stays replayable.
	Groups [][]uint64 `json:"groups,omitempty"`
	// Node scopes crash/recover/join events, and rate rules to links
	// with this node as either endpoint.
	Node uint64 `json:"node,omitempty"`
	// From and To scope rate rules to a sender and/or receiver.
	From uint64 `json:"from,omitempty"`
	To   uint64 `json:"to,omitempty"`
	// Rate is the per-delivery (per-round for reorder) probability of a
	// rate rule, in [0, 1]. A later rule with the same kind and scope
	// overrides an earlier one; Rate 0 clears it.
	Rate float64 `json:"rate,omitempty"`
	// SendQuota and ByteQuota are the new quotas for FaultQuota events.
	SendQuota int   `json:"send_quota,omitempty"`
	ByteQuota int64 `json:"byte_quota,omitempty"`
}

// FaultPlan is a deterministic, round-scheduled fault schedule for one
// run. It is serializable (chaos repro files embed it) and immutable
// once handed to New: the same plan against the same processes yields
// byte-identical transcripts for both runners, every worker count, and
// every job count.
type FaultPlan struct {
	// Seed drives every probabilistic fault decision through a
	// stateless hash — there is no PRNG stream to perturb, so plans
	// shrink soundly (removing one event never re-rolls another).
	Seed int64 `json:"seed"`
	// Events apply in (Round, listed order). Events for a round apply
	// before that round's Step calls.
	Events []FaultEvent `json:"events,omitempty"`
}

// Validate checks the plan's structural invariants: known kinds,
// positive rounds, rates within [0, 1], nodes named where required.
func (p *FaultPlan) Validate() error {
	for i := range p.Events {
		e := &p.Events[i]
		if e.Round < 1 {
			return fmt.Errorf("fault event %d (%s): round %d < 1", i, e.Kind, e.Round)
		}
		switch e.Kind {
		case FaultPartition:
			if len(e.Groups) == 0 {
				return fmt.Errorf("fault event %d: partition with no groups", i)
			}
		case FaultHeal:
		case FaultDrop, FaultDuplicate, FaultReorder, FaultCorrupt:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("fault event %d (%s): rate %v outside [0,1]", i, e.Kind, e.Rate)
			}
		case FaultCrash, FaultRecover, FaultJoin:
			if e.Node == 0 {
				return fmt.Errorf("fault event %d (%s): node must be nonzero", i, e.Kind)
			}
		case FaultQuota:
			if e.SendQuota < 0 || e.ByteQuota < 0 {
				return fmt.Errorf("fault event %d: negative quota", i)
			}
		default:
			return fmt.Errorf("fault event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// Clone returns a deep copy (the shrinker edits candidate plans without
// disturbing the original).
func (p *FaultPlan) Clone() *FaultPlan {
	if p == nil {
		return nil
	}
	out := &FaultPlan{Seed: p.Seed, Events: slices.Clone(p.Events)}
	for i := range out.Events {
		groups := out.Events[i].Groups
		if groups == nil {
			continue
		}
		groups = slices.Clone(groups)
		for g := range groups {
			groups[g] = slices.Clone(groups[g])
		}
		out.Events[i].Groups = groups
	}
	return out
}

// faultState is the compiled runtime form of a FaultPlan: the
// round-sorted event cursor, the live partition and rate rules, and the
// round-scoped scratch the injection passes write into. It is owned by
// one Network and dies with it (not pooled: fault runs are off the
// certified hot path).
type faultState struct {
	events []FaultEvent // sorted by round, stable
	next   int
	seed   uint64

	// groupOf is the live partition (nil = healed): node -> group
	// index; nodes absent from the map are isolated.
	groupOf map[ids.ID]int32
	// rules are the active rate rules in activation order; for a given
	// link and kind the last matching rule wins.
	rules []FaultEvent
	// joinAt maps late participants to their join round.
	joinAt map[ids.ID]int
	// linkLive reports whether the route filter must run this round.
	linkLive bool

	// Round-scoped scratch.
	planEvents []trace.Event // round-start events (partition, crash, …)
	linkEvents []trace.Event // per-link fault events from the filter
	fRecv      []int32       // filtered unicast receiver indices
	fSend      []int32       // filtered unicast send keys
	corrupted  []send        // corrupted copies; keys >= len(outs) index here
}

// newFaultState compiles a validated plan.
func newFaultState(p *FaultPlan) *faultState {
	fs := &faultState{
		events: slices.Clone(p.Events),
		seed:   mix64(uint64(p.Seed) ^ 0x5fa91c3d62b07e44),
		joinAt: make(map[ids.ID]int),
	}
	slices.SortStableFunc(fs.events, func(a, b FaultEvent) int {
		return cmp.Compare(a.Round, b.Round)
	})
	for i := range fs.events {
		if e := &fs.events[i]; e.Kind == FaultJoin {
			fs.joinAt[ids.ID(e.Node)] = e.Round
		}
	}
	return fs
}

// Salts separating the hash streams of the fault kinds.
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltCorrupt
	saltCorruptBit
	saltReorder
	saltReorderSwap
)

// mix64 is the 64-bit finalizer (splitmix64 variant) behind every fault
// roll: statistically well-mixed, allocation-free, and stateless.
//
//lint:noalloc pure integer mixing on the fault filter path
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// roll hashes one fault decision's coordinates into a uniform uint64.
//
//lint:noalloc stateless hash; the filter makes one call per decision
func (fs *faultState) roll(salt, a, b, c uint64) uint64 {
	h := fs.seed ^ salt*0x9e3779b97f4a7c15
	h = mix64(h + a)
	h = mix64(h + b*0xbf58476d1ce4e5b9)
	h = mix64(h + c*0x94d049bb133111eb)
	return h
}

// hit decides one probabilistic fault: true with probability rate,
// deterministically in the decision's coordinates. Rates are quantized
// to 2^-32 (indistinguishable at any feasible trial count).
//
//lint:noalloc one hash and one compare per decision
func (fs *faultState) hit(salt, a, b, c uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return fs.roll(salt, a, b, c)>>32 < uint64(rate*4294967296.0)
}

// sameGroup reports whether the live partition lets from reach to.
//
//lint:noalloc two map lookups per link on the fault filter path
func (fs *faultState) sameGroup(from, to ids.ID) bool {
	gf, okf := fs.groupOf[from]
	gt, okt := fs.groupOf[to]
	return okf && okt && gf == gt
}

// rateFor returns the effective rate of the given rule kind on the link
// from -> to: the last activated matching rule wins, 0 means inactive.
// Rule sets are tiny (a plan has a handful of events), so a linear scan
// beats any index.
//
//lint:noalloc linear scan of a handful of active rules per link
func (fs *faultState) rateFor(kind string, from, to ids.ID) float64 {
	rate := 0.0
	for i := range fs.rules {
		r := &fs.rules[i]
		if r.Kind != kind {
			continue
		}
		if r.From != 0 && ids.ID(r.From) != from {
			continue
		}
		if r.To != 0 && ids.ID(r.To) != to {
			continue
		}
		if r.Node != 0 && ids.ID(r.Node) != from && ids.ID(r.Node) != to {
			continue
		}
		rate = r.Rate
	}
	return rate
}

// applyFaultEvents applies every plan event scheduled for the current
// round (called at the start of RunRound, before stepping, on the
// driving goroutine) and refreshes the filter-live flag. Trace events
// land in planEvents in plan order — the head of the round's canonical
// event order.
func (n *Network) applyFaultEvents() {
	fs := n.faults
	fs.planEvents = fs.planEvents[:0]
	for fs.next < len(fs.events) && fs.events[fs.next].Round <= n.round {
		e := &fs.events[fs.next]
		fs.next++
		n.applyFaultEvent(e)
	}
	fs.linkLive = fs.groupOf != nil || len(fs.rules) > 0
}

// applyFaultEvent applies one plan event and records its trace events.
func (n *Network) applyFaultEvent(e *FaultEvent) {
	fs := n.faults
	switch e.Kind {
	case FaultPartition:
		if fs.groupOf == nil {
			fs.groupOf = make(map[ids.ID]int32, len(n.order))
		} else {
			clear(fs.groupOf)
		}
		for gi, group := range e.Groups {
			var b strings.Builder
			for j, raw := range group {
				fs.groupOf[ids.ID(raw)] = int32(gi)
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(raw, 10))
			}
			fs.planEvents = append(fs.planEvents, trace.Event{
				Round: n.round, From: uint64(gi), Kind: trace.KindPartition,
				Size: len(group), Enc: b.String(),
			})
		}
	case FaultHeal:
		fs.groupOf = nil
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, Kind: trace.KindHeal,
		})
	case FaultDrop, FaultDuplicate, FaultReorder, FaultCorrupt:
		fs.rules = append(fs.rules, *e)
		from := e.From
		if from == 0 {
			from = e.Node
		}
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, From: from, To: e.To, Kind: linkKindFor(e.Kind),
			Enc: "rate=" + strconv.FormatFloat(e.Rate, 'g', -1, 64),
		})
	case FaultCrash:
		st, ok := n.procs[ids.ID(e.Node)]
		if !ok || st.crashed {
			return
		}
		st.crashed = true
		n.crashes = append(n.crashes, CrashRecord{
			Node: st.id, Round: n.round, Reason: "fault plan crash",
		})
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, From: e.Node, Kind: trace.KindNodeCrashed,
		})
	case FaultRecover:
		st, ok := n.procs[ids.ID(e.Node)]
		if !ok || !st.crashed {
			return
		}
		st.crashed = false
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, From: e.Node, Kind: trace.KindNodeRecovered,
		})
	case FaultJoin:
		if _, ok := n.procs[ids.ID(e.Node)]; !ok {
			return
		}
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, From: e.Node, Kind: trace.KindNodeJoined,
		})
	case FaultQuota:
		n.cfg.SendQuota = e.SendQuota
		n.cfg.ByteQuota = e.ByteQuota
		fs.planEvents = append(fs.planEvents, trace.Event{
			Round: n.round, Kind: trace.KindQuotaChange, Size: e.SendQuota,
			Enc: "send=" + strconv.Itoa(e.SendQuota) +
				" byte=" + strconv.FormatInt(e.ByteQuota, 10),
		})
	}
}

// linkKindFor maps a rate-rule kind to its trace event kind.
func linkKindFor(kind string) string {
	switch kind {
	case FaultDrop:
		return trace.KindLinkDrop
	case FaultDuplicate:
		return trace.KindLinkDup
	case FaultReorder:
		return trace.KindLinkReorder
	default:
		return trace.KindLinkCorrupt
	}
}

// faultFilter rewrites the classified send stream under the live
// partition and rate rules. It runs inside the serial routePrepare pass
// — after dedup/classify, before bucketing — and only on rounds with a
// live link fault. The filtered stream is expressed entirely as unicast
// entries (broadcasts are demoted, fanned per live receiver in node
// order) appended in global send-index order, so the per-receiver
// bucket order — and therefore every inbox and the transcript — matches
// the unfiltered merge order exactly. Corrupted copies live in a side
// buffer addressed by keys past len(outs); sendAt resolves them.
func (n *Network) faultFilter(outs []send) {
	fs := n.faults
	fs.fRecv = fs.fRecv[:0]
	fs.fSend = fs.fSend[:0]
	nl := len(n.live)
	bi, ui := 0, 0
	nb, nu := len(n.bcastIdx), len(n.uniSend)
	for bi < nb || ui < nu {
		if ui >= nu || (bi < nb && n.bcastIdx[bi] < n.uniSend[ui]) {
			k := n.bcastIdx[bi]
			bi++
			for r := 0; r < nl; r++ {
				if n.doneMask[r] {
					continue
				}
				n.filterLink(outs, k, int32(r))
			}
		} else {
			k := n.uniSend[ui]
			r := n.uniRecv[ui]
			ui++
			n.filterLink(outs, k, r)
		}
	}
	// Install the filtered stream: all demoted to unicast entries.
	n.bcastIdx = n.bcastIdx[:0]
	n.uniRecv = append(n.uniRecv[:0], fs.fRecv...)
	n.uniSend = append(n.uniSend[:0], fs.fSend...)
}

// filterLink applies the live link faults to one (send, receiver) pair
// and appends the surviving entries (0, 1, or 2 of them) to the
// filtered stream. Decision order: partition cut, drop, corrupt,
// duplicate.
func (n *Network) filterLink(outs []send, k, r int32) {
	fs := n.faults
	s := &outs[k]
	to := n.live[r].id
	if fs.groupOf != nil && s.from != to && !fs.sameGroup(s.from, to) {
		return // partition cuts are silent; KindPartition announced them
	}
	if rate := fs.rateFor(FaultDrop, s.from, to); rate > 0 &&
		fs.hit(saltDrop, uint64(n.round), uint64(k), uint64(to), rate) {
		fs.linkEvents = append(fs.linkEvents, trace.Event{
			Round: n.round, From: uint64(s.from), To: uint64(to),
			Kind: trace.KindLinkDrop, Size: len(s.encoded),
		})
		return
	}
	key := k
	if rate := fs.rateFor(FaultCorrupt, s.from, to); rate > 0 &&
		fs.hit(saltCorrupt, uint64(n.round), uint64(k), uint64(to), rate) {
		ck, ok := n.corruptSend(outs, k, to)
		fs.linkEvents = append(fs.linkEvents, trace.Event{
			Round: n.round, From: uint64(s.from), To: uint64(to),
			Kind: trace.KindLinkCorrupt, Size: len(s.encoded),
		})
		if !ok {
			return // mutation no longer decodes: the message is lost
		}
		key = ck
	}
	fs.fRecv = append(fs.fRecv, r)
	fs.fSend = append(fs.fSend, key)
	if rate := fs.rateFor(FaultDuplicate, s.from, to); rate > 0 &&
		fs.hit(saltDup, uint64(n.round), uint64(k), uint64(to), rate) {
		fs.fRecv = append(fs.fRecv, r)
		fs.fSend = append(fs.fSend, key)
		fs.linkEvents = append(fs.linkEvents, trace.Event{
			Round: n.round, From: uint64(s.from), To: uint64(to),
			Kind: trace.KindLinkDup, Size: len(s.encoded),
		})
	}
}

// corruptSend materializes a corrupted copy of outs[k] for delivery to
// `to`: one deterministically chosen encoding bit flipped, re-decoded.
// It returns the side-buffer key, or ok=false if the mutation does not
// decode (the caller drops the message).
func (n *Network) corruptSend(outs []send, k int32, to ids.ID) (int32, bool) {
	fs := n.faults
	s := &outs[k]
	if len(s.encoded) == 0 {
		return 0, false
	}
	b := []byte(s.encoded)
	h := fs.roll(saltCorruptBit, uint64(n.round), uint64(k), uint64(to))
	b[int(h%uint64(len(b)))] ^= 1 << ((h >> 32) % 8)
	p, err := wire.Decode(b)
	if err != nil {
		return 0, false
	}
	fs.corrupted = append(fs.corrupted, send{
		from: s.from, to: s.to, payload: p,
		encoded: string(b), digest: digest64(b),
	})
	return int32(len(outs) + len(fs.corrupted) - 1), true
}

// faultReorder shuffles the within-round bucket order of receivers with
// a live reorder rule. It runs after the counting sort and before
// materialization, so the shuffle is expressed purely as a permutation
// of uniIdx — inbox views and the transcript pick it up for free. (On
// filter rounds every key is on the unicast side, so bucket order IS
// inbox order.)
func (n *Network) faultReorder() {
	fs := n.faults
	for i := range n.live {
		to := n.live[i].id
		rate := fs.rateFor(FaultReorder, ids.None, to)
		if rate <= 0 {
			continue
		}
		lo, hi := int(n.uniStart[i]), int(n.uniStart[i+1])
		cnt := hi - lo
		if cnt < 2 || !fs.hit(saltReorder, uint64(n.round), uint64(to), 0, rate) {
			continue
		}
		for j := cnt - 1; j > 0; j-- {
			h := fs.roll(saltReorderSwap, uint64(n.round), uint64(to), uint64(j))
			m := int(h % uint64(j+1))
			n.uniIdx[lo+j], n.uniIdx[lo+m] = n.uniIdx[lo+m], n.uniIdx[lo+j]
		}
		fs.linkEvents = append(fs.linkEvents, trace.Event{
			Round: n.round, To: uint64(to), Kind: trace.KindLinkReorder, Size: cnt,
		})
	}
}

// sendAt resolves a send key: ordinary keys index outs, keys past
// len(outs) index the round's corrupted-copy side buffer.
//
//lint:noalloc one bounds compare per materialized entry
func (n *Network) sendAt(outs []send, k int32) *send {
	if int(k) < len(outs) {
		return &outs[k]
	}
	return &n.faults.corrupted[int(k)-len(outs)]
}
