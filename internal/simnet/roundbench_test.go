package simnet

import (
	"fmt"
	"testing"
)

// BenchmarkRoundEngine is the canonical broadcast-heavy hot-path bench:
// every node broadcasts every round, so one op is one round with n sends
// and n² deliveries through dedup, routing, and traffic accounting.
// `make bench-json` runs the same workload via cmd/ubabench and records
// the trajectory in BENCH_simnet.json.
func BenchmarkRoundEngine(b *testing.B) {
	for _, n := range []int{32, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, false)
		})
	}
}

// BenchmarkRoundEngineConcurrent is the same workload on the pooled
// concurrent runner.
func BenchmarkRoundEngineConcurrent(b *testing.B) {
	for _, n := range []int{32, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, true)
		})
	}
}

func benchRounds(b *testing.B, n int, concurrent bool) {
	net, _ := NewBroadcastBench(n, b.N+1, concurrent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}
