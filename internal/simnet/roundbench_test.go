package simnet

import (
	"fmt"
	"testing"
)

// benchNs are the system sizes the full-round benchmarks sweep. The
// paper's protocols are Ω(n²)-message by design, so the top sizes are
// where the route/delivery half dominates and the sharded engine earns
// its keep.
var benchNs = []int{32, 128, 256, 512, 1024, 2048}

// phaseNs are the sizes the step-vs-route phase-split benchmarks sweep
// (n=256 is the size the CI perf smoke tracks).
var phaseNs = []int{256, 512, 1024}

// BenchmarkRoundEngine is the canonical broadcast-heavy hot-path bench:
// every node broadcasts every round, so one op is one round with n sends
// and n² deliveries through dedup, routing, and traffic accounting.
// `make bench-json` runs the same workload via cmd/ubabench and records
// the trajectory in BENCH_simnet.json.
func BenchmarkRoundEngine(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, false)
		})
	}
}

// BenchmarkRoundEngineConcurrent is the same workload on the pooled
// concurrent runner.
func BenchmarkRoundEngineConcurrent(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRounds(b, n, true)
		})
	}
}

// BenchmarkRoundEngineSparse is the scaling showcase for the shared
// broadcast block: broadcast-heavy rounds at sizes where the former
// per-receiver materialization (n² Received values per round) was
// prohibitive. One op is still one full round — n sends, n² logical
// deliveries — but materialized storage is O(n), so the top sizes run
// in near-linear time. `make bench-sparse` runs this subset under a
// wall-clock budget and CI uploads the output as an artifact.
func BenchmarkRoundEngineSparse(b *testing.B) {
	for _, runner := range []struct {
		name       string
		concurrent bool
	}{{"sequential", false}, {"concurrent", true}} {
		for _, n := range []int{4096, 8192} {
			b.Run(fmt.Sprintf("%s/n=%d", runner.name, n), func(b *testing.B) {
				benchRounds(b, n, runner.concurrent)
			})
		}
	}
}

func benchRounds(b *testing.B, n int, concurrent bool) {
	net, _, err := NewBroadcastBench(n, b.N+2, concurrent)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	// One warm-up round sizes the shared broadcast block, the unicast
	// arena, and the per-sender scratch outside the timed region, so
	// low-iteration runs measure the steady-state per-round cost, not a
	// one-time page-in.
	if err := net.RunRound(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepPhase measures only the step half of a round (process
// state machines plus the node-order merge), isolating it from routing.
func BenchmarkStepPhase(b *testing.B) {
	benchPhase(b, false, (*RoundPhases).StepOnly)
}

// BenchmarkStepPhaseConcurrent is the step half on the worker pool.
func BenchmarkStepPhaseConcurrent(b *testing.B) {
	benchPhase(b, true, (*RoundPhases).StepOnly)
}

// BenchmarkRoutePhase measures only the routing/delivery half: block
// sort, dedup, arena sizing, fan-out, accounting.
func BenchmarkRoutePhase(b *testing.B) {
	benchPhase(b, false, func(rp *RoundPhases) error { rp.RouteOnly(); return nil })
}

// BenchmarkRoutePhaseConcurrent is the routing half with sharded
// delivery on the worker pool (inline when the pool has one worker).
func BenchmarkRoutePhaseConcurrent(b *testing.B) {
	benchPhase(b, true, func(rp *RoundPhases) error { rp.RouteOnly(); return nil })
}

// campaignChunk is how many rounds each simulation advances per
// campaign benchmark op: enough that dispatch cost amortizes the way it
// does in a real campaign cell, small enough that one op stays cheap.
const campaignChunk = 4

// BenchmarkCampaign measures aggregate campaign throughput: jobs
// independent sequential simulations multiplexed over one bounded
// scheduler. One op advances every simulation by campaignChunk rounds,
// so rows with the same n are directly comparable — jobs× the rounds
// for (ideally) the same wall time, up to the worker budget. `make
// bench-json` records the jobs × GOMAXPROCS matrix in BENCH_simnet.json.
func BenchmarkCampaign(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d/n=256", jobs), func(b *testing.B) {
			cb, err := NewCampaignBench(jobs, 256)
			if err != nil {
				b.Fatal(err)
			}
			defer cb.Close()
			// Warm-up op: sizes every network's round buffers and the
			// campaign phase's completion channel (see benchRounds).
			if err := cb.RunChunk(campaignChunk); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cb.RunChunk(campaignChunk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchPhase(b *testing.B, concurrent bool, op func(*RoundPhases) error) {
	for _, n := range phaseNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rp, err := NewRoundPhases(n, concurrent)
			if err != nil {
				b.Fatal(err)
			}
			defer rp.Close()
			// Warm-up: the first route pass sizes the delivery
			// buffers; keep that outside the timed region (see
			// benchRounds).
			if err := op(rp); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(rp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
