package simnet

import (
	"cmp"
	"slices"
	"strings"

	"uba/internal/ids"
	"uba/internal/trace"
)

// This file is the routing/delivery half of a round. Broadcast-heavy
// protocols used to pay an O(n²) fan-out here — n receivers times B
// materialized broadcast copies; now a broadcast is stored once in a
// shared block and every inbox is a lazy view, so the whole pass is
// O(S + B + U) (sends, surviving broadcasts, unicast deliveries) plus
// the per-receiver constant of handing out views. It is split into a
// cheap serial prepare pass and a delivery pass that is embarrassingly
// parallel over receivers, so the concurrent runner can shard it across
// the same worker pool that runs the step phase.
//
// The pipeline, per round:
//
//  1. Block-local sort (routePrepare). outs arrives grouped by sender in
//     ascending node order — both runners merge the per-process send
//     buffers in node order and the engine stamps from = the registered
//     id — so the global sort by (from, encoding, to) of the old engine
//     is equivalent to sorting each sender's block by (encoding, to).
//     Typical blocks are tiny (a broadcast-heavy round has one send per
//     sender), turning O(S log S) into Σ O(k log k) ≈ O(S).
//
//  2. Dedup + classify (routePrepare). One serial scan applies exactly
//     the duplicate rules documented on the old route loop — adjacent
//     exact duplicates, and unicasts duplicating a same-sender broadcast
//     via the per-sender broadcast-digest set — and classifies each
//     surviving send as a broadcast (index into outs) or a unicast
//     resolved to its receiver's live index (dropped here if the target
//     is unknown or done, matching the old delivery-time check; Done is
//     snapshotted once per round — no process steps during routing, so
//     the snapshot is exact). Unicasts are then bucketed per receiver
//     with a stable counting sort, preserving send order.
//
//  3. Sparse materialization (routePrepare). The surviving broadcasts
//     are copied once into the shared broadcast block and the surviving
//     unicasts once into the unicast arena, each aligned with its send
//     index list — O(B + U) Received values total, regardless of the
//     receiver count. The copies are what let a receiver's view outlive
//     the outs buffer (both runners rewrite outs while inboxes are
//     still being read next round). Block and arena are recycled across
//     rounds — which is why Process.Step must not retain env.Inbox
//     (see the package docs).
//
//  4. Delivery (routeShardDeliver). Receivers are partitioned into
//     contiguous shards. Each shard walks its receivers in node order
//     and, per receiver, assembles an Inbox view over the shared block
//     and the receiver's arena segment; the view's merge by send index
//     reproduces exactly the (sender, encoding)-sorted inbox the
//     materialized engine produced. Delivery and byte tallies are
//     computed arithmetically (per-receiver: B broadcasts plus its
//     bucket; bytes: the block's byte total plus the bucket's) without
//     touching message data; only contact-set maintenance and
//     transcript logging walk the merge, and only when enabled. Every
//     inbox, contact set, per-shard tally and per-shard event buffer is
//     written by exactly one worker, so the pass needs no locks and its
//     output is independent of worker scheduling.
//
//  5. Merge (route). Per-shard delivery/byte tallies are reduced and
//     per-shard event buffers appended to the EventLog in shard — i.e.
//     receiver — order, so the transcript and the Collector flush are
//     identical for the sequential runner, for any worker count, and
//     across runs. The canonical transcript order is receiver-major:
//     deliveries grouped by receiver in ascending node order, each
//     receiver's messages in inbox order.

// routeShard is one worker's slice of the delivery pass: the receiver
// range [lo, hi) plus the tallies and the event buffer that worker owns.
// The slices are scratch, recycled across rounds.
type routeShard struct {
	lo, hi     int
	deliveries int64
	bytes      int64
	events     []trace.Event
}

// route fans out and filters the round's sends into next-round inboxes
// and returns the delivery/byte totals for the batched Collector flush.
// See the pipeline comment at the top of this file; the duplicate
// semantics are unchanged from the send-major loop it replaces (the
// dedup key is (sender, encoding) per receiver; digests short-circuit
// the string compares and equal digests fall back to comparing full
// encodings, so a 64-bit collision can never drop a distinct message).
//
//lint:noalloc the fan-out runs every round; shard table and event buffers are recycled, growth is capacity-guarded
func (n *Network) route(outs []send) (deliveries, bytes int64) {
	n.routePrepare(outs)

	nshards := 1
	if n.cfg.Concurrent {
		if w := n.workersCap(); w > 1 {
			nshards = w
		}
	}
	if cap(n.shards) < nshards {
		n.shards = make([]routeShard, nshards)
	}
	shards := n.shards[:nshards]
	n.shards = shards
	nl := len(n.live)
	for s := range shards {
		shards[s].lo = s * nl / nshards
		shards[s].hi = (s + 1) * nl / nshards
		shards[s].deliveries = 0
		shards[s].bytes = 0
		shards[s].events = shards[s].events[:0]
	}
	if nshards == 1 {
		n.routeShardDeliver(&shards[0])
	} else {
		n.runRouteShards(nshards)
	}

	for s := range shards {
		deliveries += shards[s].deliveries
		bytes += shards[s].bytes
	}
	if n.cfg.EventLog != nil {
		if n.faults != nil {
			n.cfg.EventLog.RecordBatch(n.faults.linkEvents)
		}
		for s := range shards {
			n.cfg.EventLog.RecordBatch(shards[s].events)
		}
	}
	if n.cfg.Observer != nil {
		// Assemble the round's observer view in the canonical record
		// order: fault-plan events (plan order), containment events
		// (node order, from the step merge), link-fault events (send
		// order, from the serial filter), then deliveries in shard —
		// i.e. receiver — order: the same order the EventLog records.
		ev := n.roundEvents[:0]
		if n.faults != nil {
			ev = append(ev, n.faults.planEvents...)
		}
		ev = append(ev, n.stepEvents...)
		if n.faults != nil {
			ev = append(ev, n.faults.linkEvents...)
		}
		for s := range shards {
			ev = append(ev, shards[s].events...)
		}
		n.roundEvents = ev
	}
	return deliveries, bytes
}

// routePrepare runs the serial half of routing: block-local sort, dedup
// and classification, unicast bucketing, and exact arena sizing. After
// it returns, routeShardDeliver can run for disjoint receiver ranges in
// parallel with no further coordination.
//
//lint:noalloc the serial prepare pass reuses the network's index and arena scratch; all growth is capacity-guarded or appends into recycled buffers
func (n *Network) routePrepare(outs []send) {
	// (1) Block-local sort: each sender's block by (encoding, to).
	for lo := 0; lo < len(outs); {
		hi := lo + 1
		for hi < len(outs) && outs[hi].from == outs[lo].from {
			hi++
		}
		if hi-lo > 1 {
			slices.SortFunc(outs[lo:hi], func(a, b send) int {
				if c := strings.Compare(a.encoded, b.encoded); c != 0 {
					return c
				}
				return cmp.Compare(a.to, b.to)
			})
		}
		lo = hi
	}

	// (2) Done snapshot: Done is constant during routing (no process
	// steps between the step barrier and the next round), so one call
	// per receiver replaces the old per-(send, receiver) interface call.
	nl := len(n.live)
	n.doneMask = grown(n.doneMask, nl)
	for i, st := range n.live {
		// Crash faults are unreachable: containment means a crashed
		// node receives nothing, exactly like a halted one. Fault-plan
		// late joiners receive nothing before their join round.
		n.doneMask[i] = st.crashed || st.joinRound > n.round || st.proc.Done()
	}
	if n.faults != nil {
		// Round-scoped fault scratch: stale link events or corrupted
		// copies from the previous fault round must not leak into this
		// one (clear drops the payload references they pin).
		clear(n.faults.corrupted)
		n.faults.corrupted = n.faults.corrupted[:0]
		n.faults.linkEvents = n.faults.linkEvents[:0]
	}

	// (3) Dedup + classify. Same duplicate rules as the old send-major
	// loop: under the (from, encoding, to) order, exact duplicates are
	// adjacent (previous-send compare) and a broadcast sorts before any
	// same-encoding unicast from the same sender (ids.None is the
	// smallest id), so unicast-duplicates-broadcast is a membership
	// check against the sender's per-round broadcast digests.
	bd, be := n.bcastDigests[:0], n.bcastEncs[:0]
	n.bcastIdx = n.bcastIdx[:0]
	n.uniRecv = n.uniRecv[:0]
	n.uniSend = n.uniSend[:0]
	for k := range outs {
		s := &outs[k]
		if k > 0 {
			p := &outs[k-1]
			if p.from != s.from {
				bd, be = bd[:0], be[:0]
			} else if p.to == s.to && p.digest == s.digest && p.encoded == s.encoded {
				// Exact duplicate of the previous send: discarded by
				// the model.
				continue
			}
		}
		if s.to == ids.None {
			bd = append(bd, s.digest)
			be = append(be, s.encoded)
			n.bcastIdx = append(n.bcastIdx, int32(k))
			continue
		}
		dup := false
		for j, d := range bd {
			if d == s.digest && be[j] == s.encoded {
				// Same payload already broadcast by this sender this
				// round; the unicast copy is a duplicate for its target.
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		r, ok := slices.BinarySearch(n.order, s.to)
		if !ok || n.doneMask[r] {
			continue // unknown or halted target: dropped
		}
		n.uniRecv = append(n.uniRecv, int32(r))
		n.uniSend = append(n.uniSend, int32(k))
	}
	n.bcastDigests, n.bcastEncs = bd, be

	if n.faults != nil && n.faults.linkLive {
		// (3b) Link-fault filter: rewrite the classified stream under
		// the live partition/rate rules (see fault.go). Broadcasts are
		// demoted to per-receiver unicast entries in send-index order,
		// so the bucket order below reproduces the merge order exactly.
		//lint:coldpath the filter runs only on rounds with a live fault rule; the certified path never reaches it
		n.faultFilter(outs)
	}

	// (4) Bucket unicasts per receiver (stable counting sort: within a
	// bucket, send order — and therefore the sorted order — is kept).
	n.uniStart = grown(n.uniStart, nl+1)
	clear(n.uniStart)
	for _, r := range n.uniRecv {
		n.uniStart[r+1]++
	}
	for i := 0; i < nl; i++ {
		n.uniStart[i+1] += n.uniStart[i]
	}
	n.uniIdx = grown(n.uniIdx, len(n.uniRecv))
	n.uniCursor = grown(n.uniCursor, nl)
	copy(n.uniCursor, n.uniStart[:nl])
	for j, r := range n.uniRecv {
		n.uniIdx[n.uniCursor[r]] = n.uniSend[j]
		n.uniCursor[r]++
	}
	if n.faults != nil && n.faults.linkLive {
		// (4b) Within-round reorder faults permute receiver buckets
		// before materialization, so inboxes and transcript pick the
		// shuffle up with no further changes.
		n.faultReorder()
	}

	// (5) Sparse materialization: copy the surviving broadcasts once
	// into the shared block and the surviving unicasts once into the
	// arena, aligned with bcastIdx and uniIdx respectively. Receivers
	// get views over these copies, never over outs — both runners
	// rewrite outs while next round's inboxes are still being read.
	// Shrink-clearing the recycled tails drops the references held by
	// last round's larger block/arena so dead payloads are not pinned.
	nb := len(n.bcastIdx)
	n.bcastBlock = recycled(n.bcastBlock, nb, &n.bcastLive)
	var bbytes int64
	for j, k := range n.bcastIdx {
		s := &outs[k]
		n.bcastBlock[j] = Received{From: s.from, Payload: s.payload, encoded: s.encoded, bcast: true}
		bbytes += int64(len(s.encoded))
	}
	n.bcastBytes = bbytes
	nu := len(n.uniIdx)
	n.uniArena = recycled(n.uniArena, nu, &n.uniLive)
	if n.faults == nil {
		for j, k := range n.uniIdx {
			s := &outs[k]
			n.uniArena[j] = Received{From: s.from, Payload: s.payload, encoded: s.encoded}
		}
	} else {
		// Fault-plan variant of the same copy loop: keys may address
		// the corrupted side buffer, and demoted broadcasts keep their
		// Broadcast transcript flag via Received.bcast.
		for j, k := range n.uniIdx {
			s := n.sendAt(outs, k)
			n.uniArena[j] = Received{From: s.from, Payload: s.payload, encoded: s.encoded, bcast: s.to == ids.None}
		}
	}
}

// routeShardDeliver hands out the inbox views of the receivers in sh's
// range. It is safe to run concurrently for disjoint shards: it writes
// only the shard's receivers' inboxes/contact sets and the shard's own
// tallies and event buffer; the broadcast block, the unicast arena and
// the index lists the views read through are written only by the serial
// prepare pass and are read-only here.
//
//lint:shardsafe owns=sh the shard ranges partition the receivers; inboxes in [sh.lo, sh.hi) are shard-owned
//lint:noalloc the delivery walk runs per receiver per round; inboxes are views and event buffers are shard-owned recycled scratch
//lint:nonblock route tasks run to the pool's phase barrier; a blocking shard would deadlock the round against it
func (n *Network) routeShardDeliver(sh *routeShard) {
	logging := n.cfg.EventLog != nil || n.cfg.Observer != nil
	round := n.round + 1 // deliveries land at the start of the next round
	nb := len(n.bcastBlock)
	var deliveries, bytes int64
	for i := sh.lo; i < sh.hi; i++ {
		st := n.live[i]
		if n.doneMask[i] {
			st.inbox = Inbox{}
			continue
		}
		ulo, uhi := int(n.uniStart[i]), int(n.uniStart[i+1])
		nm := nb + (uhi - ulo)
		if nm == 0 {
			st.inbox = Inbox{}
			continue
		}
		// The receiver's inbox is a view: the shared broadcast block
		// merged with its private arena segment by global send index —
		// the receiver-relevant subsequence of the (from, encoding,
		// to)-sorted send stream, i.e. the documented (sender,
		// encoding) inbox order. Capacity caps keep even a pathological
		// append on a leaked slice from crossing into a neighbour.
		st.inbox = Inbox{
			bcast: n.bcastBlock[:nb:nb],
			bkeys: n.bcastIdx[:nb:nb],
			uni:   n.uniArena[ulo:uhi:uhi],
			ukeys: n.uniIdx[ulo:uhi:uhi],
		}
		// Tallies are arithmetic — no per-receiver message walk: the
		// block's sizes are shared by every live receiver.
		deliveries += int64(nm)
		bytes += n.bcastBytes
		for j := ulo; j < uhi; j++ {
			bytes += int64(len(n.uniArena[j].encoded))
		}
		if st.contacts == nil && !logging {
			continue
		}
		// Contact-set maintenance and transcript logging are the only
		// consumers that need the merged order; walk it just for them.
		bi, ui := 0, ulo
		for bi < nb || ui < uhi {
			var m Received
			if ui >= uhi || (bi < nb && n.bcastIdx[bi] < n.uniIdx[ui]) {
				m = n.bcastBlock[bi]
				bi++
			} else {
				m = n.uniArena[ui]
				ui++
			}
			if st.contacts != nil {
				//lint:coldpath contact-set maintenance runs only under EnforceContactRule, which the measured hot path disables
				st.contacts[m.From] = struct{}{}
			}
			if logging {
				sh.events = append(sh.events, trace.Event{
					Round:     round,
					From:      uint64(m.From),
					To:        uint64(st.id),
					Kind:      m.Payload.Kind().String(),
					Size:      len(m.encoded),
					Broadcast: m.bcast,
					Enc:       m.encoded,
				})
			}
		}
	}
	sh.deliveries, sh.bytes = deliveries, bytes
}

// recycled returns s resized to n elements, reusing its backing array
// when possible and clearing the previously live tail beyond n so a
// shrinking round cannot pin the references the dead slots held. live
// is updated to n. Contents of the returned slice are unspecified;
// callers overwrite every element.
//
//lint:noalloc the grow-once arena resizer: it allocates only until the backing array reaches its high-water mark
func recycled(s []Received, n int, live *int) []Received {
	if cap(s) < n {
		s = make([]Received, n)
	} else {
		if n < *live {
			clear(s[n:*live])
		}
		s = s[:n]
	}
	*live = n
	return s
}

// grown returns s resized to n elements, reusing its backing array when
// possible. Contents are unspecified; callers overwrite or clear.
//
//lint:noalloc the grow-once scratch resizer: it allocates only until the backing array reaches its high-water mark
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
