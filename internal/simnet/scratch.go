package simnet

import (
	"sync"

	"uba/internal/trace"
)

// Scratch recycling across networks. Within one Network the round
// buffers (outs, results, arenas, shard table, event scratch) are
// already reused round over round; this file extends the reuse across
// Network lifetimes, which is what campaign workloads need: a chaos
// campaign builds a fresh Network per (arena, seed) cell, and without
// recycling every cell re-grows every buffer from nil — piling
// allocator and GC pressure onto exactly the workload the shared
// scheduler lets run many-at-once. New adopts a recycled scratch set
// when one is available; Close clears and returns it. The pool is a
// sync.Pool, so concurrent jobs recycle without contention and the GC
// can still reclaim idle scratch under memory pressure.
//
// Determinism is untouched: scratch contents are overwritten (or
// explicitly sized and cleared) before every use — adoption only seeds
// capacities, never values — so a cell that inherits another cell's
// buffers produces byte-identical output to one that starts cold.

// netScratch is the recyclable allocation footprint of one Network:
// every round-scoped buffer that grows to a workload-dependent
// high-water mark. Payload-carrying slots are cleared before the set
// enters the pool, so parked scratch never pins message payloads.
type netScratch struct {
	outs         []send
	results      []stepResult
	bcastDigests []uint64
	bcastEncs    []string
	stepEvents   []trace.Event
	roundEvents  []trace.Event
	doneMask     []bool
	bcastIdx     []int32
	uniRecv      []int32
	uniSend      []int32
	uniIdx       []int32
	uniStart     []int32
	uniCursor    []int32
	bcastBlock   []Received
	uniArena     []Received
	shards       []routeShard
}

var scratchPool sync.Pool

// adoptScratch installs a recycled scratch set into a fresh Network,
// if the pool has one. Called from New; a miss just means the buffers
// grow lazily as before.
func (n *Network) adoptScratch() {
	s, _ := scratchPool.Get().(*netScratch)
	if s == nil {
		return
	}
	n.outs = s.outs
	n.results = s.results
	n.bcastDigests = s.bcastDigests
	n.bcastEncs = s.bcastEncs
	n.stepEvents = s.stepEvents
	n.roundEvents = s.roundEvents
	n.doneMask = s.doneMask
	n.bcastIdx = s.bcastIdx
	n.uniRecv = s.uniRecv
	n.uniSend = s.uniSend
	n.uniIdx = s.uniIdx
	n.uniStart = s.uniStart
	n.uniCursor = s.uniCursor
	n.bcastBlock = s.bcastBlock
	n.uniArena = s.uniArena
	n.shards = s.shards
	// Keep the emptied box for releaseScratch, so a Network's whole
	// recycle cycle allocates nothing after the first generation.
	*s = netScratch{}
	n.scratchBox = s
}

// releaseScratch clears the network's round buffers to their full
// capacity — dropping every payload, event and result reference they
// pinned — and parks them in the pool for the next Network. Called
// from Close.
//
//lint:coldpath scratch release runs once per Network, in Close
func (n *Network) releaseScratch() {
	s := n.scratchBox
	if s == nil {
		s = new(netScratch)
	}
	n.scratchBox = nil
	clear(n.outs[:cap(n.outs)])
	clear(n.results[:cap(n.results)])
	clear(n.bcastEncs[:cap(n.bcastEncs)])
	clear(n.stepEvents[:cap(n.stepEvents)])
	clear(n.roundEvents[:cap(n.roundEvents)])
	clear(n.bcastBlock[:cap(n.bcastBlock)])
	clear(n.uniArena[:cap(n.uniArena)])
	n.bcastLive, n.uniLive = 0, 0
	shards := n.shards[:cap(n.shards)]
	for i := range shards {
		ev := shards[i].events
		clear(ev[:cap(ev)])
		shards[i] = routeShard{events: ev[:0]}
	}
	*s = netScratch{
		outs:         n.outs[:0],
		results:      n.results[:0],
		bcastDigests: n.bcastDigests[:0],
		bcastEncs:    n.bcastEncs[:0],
		stepEvents:   n.stepEvents[:0],
		roundEvents:  n.roundEvents[:0],
		doneMask:     n.doneMask[:0],
		bcastIdx:     n.bcastIdx[:0],
		uniRecv:      n.uniRecv[:0],
		uniSend:      n.uniSend[:0],
		uniIdx:       n.uniIdx[:0],
		uniStart:     n.uniStart[:0],
		uniCursor:    n.uniCursor[:0],
		bcastBlock:   n.bcastBlock[:0],
		uniArena:     n.uniArena[:0],
		shards:       shards[:0],
	}
	n.outs, n.results = nil, nil
	n.bcastDigests, n.bcastEncs = nil, nil
	n.stepEvents, n.roundEvents = nil, nil
	n.doneMask = nil
	n.bcastIdx, n.uniRecv, n.uniSend = nil, nil, nil
	n.uniIdx, n.uniStart, n.uniCursor = nil, nil, nil
	n.bcastBlock, n.uniArena = nil, nil
	n.shards = nil
	scratchPool.Put(s)
}
