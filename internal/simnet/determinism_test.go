package simnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// This file asserts the engine-level determinism contract the sharded
// route pipeline must preserve: the EventLog transcript, the Collector
// report (totals and per-round breakdown), and every process's
// observed deliveries are identical between the sequential runner and
// the pooled concurrent runner — for any worker count, and across
// repeated runs of the same worker count (i.e. independent of worker
// scheduling). The facade-level matrix across adversaries and
// protocols lives in runner_equivalence_test.go; this one forces
// multi-worker pools so sharded delivery is exercised even on a
// single-core host.

// determinismOutcome is everything observable about one engine run.
type determinismOutcome struct {
	events []trace.Event
	report trace.Report
	logs   map[ids.ID][]string // per-process delivery logs, in order
}

// runDeterminismWorkload executes the named workload with the given
// worker count (0 = sequential) and captures the full observable state.
func runDeterminismWorkload(t *testing.T, workload string, seed int64, workers int) determinismOutcome {
	t.Helper()
	log := trace.NewEventLog(500_000)
	col := &trace.Collector{}
	cfg := Config{MaxRounds: 40, EventLog: log, Collector: col}
	if workload == "panicky" {
		// Tight quotas so the containment path (quota drops) is part of
		// the transcript being compared, not just the crash events.
		cfg.SendQuota = 4
	}
	net := New(cfg)
	if workers > 0 {
		net.forceWorkers(workers)
		defer net.Close()
	}
	rng := rand.New(rand.NewSource(seed))
	nodeIDs := ids.Sparse(rng, 14)
	out := determinismOutcome{logs: make(map[ids.ID][]string)}

	switch workload {
	case "gossip": // mixed broadcast/unicast/silence with halting nodes
		procs := make([]*gossip, 0, len(nodeIDs))
		for i, id := range nodeIDs {
			g := &gossip{
				id:    id,
				rng:   rand.New(rand.NewSource(seed + int64(i) + 1)),
				peers: nodeIDs,
			}
			procs = append(procs, g)
			if err := net.Add(g); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := net.Run(AllDone(nodeIDs)); err != nil {
			t.Fatal(err)
		}
		for _, g := range procs {
			out.logs[g.id] = g.log
		}
	case "chatter": // pure broadcast storm, nobody halts
		for _, id := range nodeIDs {
			if err := net.Add(&ChatterProcess{Ident: id}); err != nil {
				t.Fatal(err)
			}
		}
		mustRounds(t, net, 6)
	case "sparsemix": // dense shared broadcast block + sparse unicast arena
		procs := make([]*sparseMix, 0, len(nodeIDs))
		for i, id := range nodeIDs {
			p := &sparseMix{id: id, idx: i, peers: nodeIDs}
			procs = append(procs, p)
			if err := net.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		mustRounds(t, net, 8)
		for _, p := range procs {
			out.logs[p.id] = p.log
		}
	case "panicky": // crashes + quota drops interleaved with chatter
		for i, id := range nodeIDs {
			var p Process
			switch i % 4 {
			case 0: // panics at a node-dependent round
				p = &panicAt{ChatterProcess: ChatterProcess{Ident: id}, Round: 2 + i/4}
			case 1: // floods past the send quota every round
				p = &flood{Ident: id, Peers: nodeIDs, Count: 1}
			default:
				p = &ChatterProcess{Ident: id}
			}
			if err := net.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		mustRounds(t, net, 8)
	default:
		t.Fatalf("unknown workload %q", workload)
	}
	if log.Dropped() > 0 {
		t.Fatalf("transcript truncated (%d dropped)", log.Dropped())
	}
	out.events = log.Events()
	out.report = col.Report()
	return out
}

func diffOutcomes(t *testing.T, label string, base, got determinismOutcome) {
	t.Helper()
	if !slices.Equal(base.events, got.events) {
		i := 0
		for i < len(base.events) && i < len(got.events) && base.events[i] == got.events[i] {
			i++
		}
		t.Fatalf("%s: transcripts diverge at event %d of %d/%d:\n  base: %+v\n  got:  %+v",
			label, i, len(base.events), len(got.events), at(base.events, i), at(got.events, i))
	}
	if !reflect.DeepEqual(base.report, got.report) {
		t.Fatalf("%s: reports differ:\n  base: %v\n  got:  %v", label, base.report, got.report)
	}
	if !reflect.DeepEqual(base.logs, got.logs) {
		t.Fatalf("%s: per-process delivery logs differ", label)
	}
}

func at(events []trace.Event, i int) any {
	if i < len(events) {
		return events[i]
	}
	return "<past end>"
}

// sparseMix is the workload shape the sparse delivery refactor exists
// for: every node broadcasts every round (a dense shared broadcast
// block), while a small round-varying subset adds unicasts (a sparse
// per-receiver arena). Deliveries are logged through the indexed inbox
// accessors, so the lazy view's merge order — not just the iterator's —
// is part of the state compared across worker counts.
type sparseMix struct {
	id    ids.ID
	idx   int
	peers []ids.ID
	log   []string
}

func (s *sparseMix) ID() ids.ID { return s.id }
func (s *sparseMix) Done() bool { return false }

func (s *sparseMix) Step(env *RoundEnv) {
	for i := 0; i < env.Inbox.Len(); i++ {
		m := env.Inbox.At(i)
		s.log = append(s.log, fmt.Sprintf("%d<-%d:%x", env.Round, m.From, m.encoded))
	}
	env.Broadcast(wire.Event{Round: uint64(env.Round), Body: []byte{byte(s.idx)}})
	if (env.Round+s.idx)%5 == 0 {
		to := s.peers[(s.idx*7+env.Round)%len(s.peers)]
		env.Send(to, wire.Event{Round: uint64(env.Round), Body: []byte("u")})
	}
}

// TestEngineDeterminismAcrossWorkerCounts runs each workload
// sequentially and on 1-, 2-, 3- and 5-worker pools and asserts the
// complete observable state is identical, then repeats one pooled
// configuration to assert schedule-independence within a fixed worker
// count.
func TestEngineDeterminismAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	for _, workload := range []string{"gossip", "chatter", "sparsemix", "panicky"} {
		for seed := int64(1); seed <= 3; seed++ {
			workload, seed := workload, seed
			t.Run(fmt.Sprintf("%s/seed=%d", workload, seed), func(t *testing.T) {
				t.Parallel()
				base := runDeterminismWorkload(t, workload, seed, 0)
				if len(base.events) == 0 {
					t.Fatal("sequential run recorded no deliveries; comparison is vacuous")
				}
				for _, workers := range []int{1, 2, 3, 5} {
					got := runDeterminismWorkload(t, workload, seed, workers)
					diffOutcomes(t, fmt.Sprintf("workers=%d", workers), base, got)
				}
				again := runDeterminismWorkload(t, workload, seed, 3)
				diffOutcomes(t, "workers=3 repeat", base, again)
			})
		}
	}
}
