package simnet

import (
	"errors"
	"testing"

	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// A round that aborts on a contact-rule violation must contribute no
// traffic to the Collector: sends are flushed only after the whole round
// validates, so the report cannot be inflated by a round that never
// delivered anything.
func TestAbortedRoundRecordsNoTraffic(t *testing.T) {
	t.Parallel()
	var col trace.Collector
	net := New(Config{EnforceContactRule: true, Collector: &col})
	// One well-behaved broadcaster and one violator: the broadcaster's
	// sends must not be counted either, because the round aborts.
	good := newRecorder(1, func(env *RoundEnv) { env.Broadcast(body("fine")) })
	bad := newRecorder(2, func(env *RoundEnv) { env.Send(1, body("illegal")) })
	if err := net.Add(good); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(bad); err != nil {
		t.Fatal(err)
	}
	if err := net.RunRound(); !errors.Is(err, ErrContactRule) {
		t.Fatalf("err = %v, want ErrContactRule", err)
	}
	r := col.Report()
	if r.Sends != 0 || r.Deliveries != 0 || r.Bytes != 0 {
		t.Fatalf("aborted round leaked traffic into the report: %v", r)
	}
	if len(r.PerRound) != 0 {
		t.Fatalf("aborted round appended per-round stats: %+v", r.PerRound)
	}
}

// A unicast whose payload duplicates one of its sender's same-round
// broadcasts is a duplicate for the unicast target (the dedup key is
// (sender, encoding) per receiver) and must be dropped.
func TestUnicastDuplicatingBroadcastIsDropped(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	dup := body("same")
	sender := newRecorder(1, func(env *RoundEnv) {
		env.Broadcast(dup)
		env.Send(2, dup)
		env.Send(3, dup)
	})
	b := newRecorder(2)
	c := newRecorder(3)
	for _, p := range []*recorder{sender, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 2)
	for _, p := range []*recorder{b, c} {
		if len(p.received[1]) != 1 {
			t.Fatalf("node %v inbox = %+v, want the broadcast copy only", p.id, p.received[1])
		}
	}
}

// Inboxes must be sorted by (sender, encoding) even when a sender mixes
// broadcasts and unicasts whose encodings straddle each other — the case
// where delivery order alone would not produce sorted inboxes.
func TestInboxSortedWithMixedBroadcastAndUnicast(t *testing.T) {
	t.Parallel()
	small := wire.Event{Round: 1, Body: []byte("aaa")}
	large := wire.Event{Round: 1, Body: []byte("zzz")}
	if string(wire.Encode(small)) >= string(wire.Encode(large)) {
		t.Fatal("test payloads not ordered as intended")
	}
	net := New(Config{})
	// Broadcast the large encoding and unicast the small one: the
	// receiver must still see them in encoding order.
	sender := newRecorder(1, func(env *RoundEnv) {
		env.Broadcast(large)
		env.Send(2, small)
	})
	sink := newRecorder(2)
	if err := net.Add(sender); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(sink); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 2)
	inbox := sink.received[1]
	if len(inbox) != 2 {
		t.Fatalf("inbox = %+v, want 2 messages", inbox)
	}
	if inbox[0].encoded > inbox[1].encoded {
		t.Fatalf("inbox not sorted by encoding: %q then %q", inbox[0].encoded, inbox[1].encoded)
	}
}

// Identical unicasts to *different* receivers are not duplicates of each
// other (the dedup is per receiver).
func TestIdenticalUnicastsToDistinctReceiversBothDeliver(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	sender := newRecorder(1, func(env *RoundEnv) {
		env.Send(2, body("copy"))
		env.Send(3, body("copy"))
	})
	b := newRecorder(2)
	c := newRecorder(3)
	for _, p := range []*recorder{sender, b, c} {
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 2)
	if len(b.received[1]) != 1 || len(c.received[1]) != 1 {
		t.Fatalf("per-receiver dedup overreached: %+v / %+v", b.received[1], c.received[1])
	}
}

// Close detaches the scheduler binding, parks the round scratch in the
// recycling pool, and is safe to call twice; a sequential network's
// Close recycles scratch too (that is the campaign-cell fast path).
func TestCloseReleasesSchedulerAndScratch(t *testing.T) {
	t.Parallel()
	net := New(Config{Concurrent: true})
	for i := ids.ID(1); i <= 4; i++ {
		if err := net.Add(newRecorder(i, func(env *RoundEnv) { env.Broadcast(body("x")) })); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 3)
	if net.sched == nil {
		t.Fatal("concurrent round did not bind the network to a scheduler")
	}
	net.Close()
	if net.sched != nil {
		t.Fatal("Close left the scheduler binding attached")
	}
	if net.outs != nil || net.bcastBlock != nil || net.shards != nil {
		t.Fatal("Close did not park the round scratch in the recycling pool")
	}
	net.Close() // idempotent

	seq := New(Config{})
	seq.Close() // never ran a round: still safe
}

// On a worker error the concurrent merge must clear every result slot:
// a stale slot would keep its sends slice — and the payloads it
// references — alive across rounds after the network latched the error.
func TestStepConcurrentErrorClearsResultSlices(t *testing.T) {
	t.Parallel()
	net := New(Config{Concurrent: true, EnforceContactRule: true})
	// Three well-behaved broadcasters around one violator, so slots on
	// both sides of the erroring node hold sends when the round aborts.
	for i := ids.ID(1); i <= 4; i++ {
		var p *recorder
		if i == 2 {
			p = newRecorder(i, func(env *RoundEnv) { env.Send(4, body("illegal")) })
		} else {
			p = newRecorder(i, func(env *RoundEnv) { env.Broadcast(body("fine")) })
		}
		if err := net.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	defer net.Close()
	if err := net.RunRound(); !errors.Is(err, ErrContactRule) {
		t.Fatalf("err = %v, want ErrContactRule", err)
	}
	for i := range net.results {
		if net.results[i].sends != nil {
			t.Fatalf("result slot %d retains its sends slice after an aborted round", i)
		}
	}
}

// Delivered inboxes are lazy views over shared storage: every live
// receiver's view aliases the one broadcast block (a broadcast is
// stored once per round, not once per receiver), its unicast segment is
// exactly sized, and total materialized storage is O(B + U) — the
// receiver count multiplies neither term.
func TestInboxViewsShareBroadcastBlock(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	const n = 5
	for i := ids.ID(1); i <= n; i++ {
		i := i
		if err := net.Add(newRecorder(i, func(env *RoundEnv) {
			env.Broadcast(body("b"))
			env.Send(1+(i%n), body("u"))
		})); err != nil {
			t.Fatal(err)
		}
	}
	mustRounds(t, net, 1)
	for _, st := range net.live {
		in := st.inbox
		if in.Len() != n+1 { // n broadcasts + 1 unicast each
			t.Fatalf("node %v inbox length %d, want %d", st.id, in.Len(), n+1)
		}
		if len(in.bcast) != n || &in.bcast[0] != &net.bcastBlock[0] {
			t.Fatalf("node %v broadcast side is not a view of the shared block", st.id)
		}
		if len(in.uni) != 1 || len(in.uni) != cap(in.uni) {
			t.Fatalf("node %v unicast segment len %d cap %d: not an exactly-sized segment",
				st.id, len(in.uni), cap(in.uni))
		}
	}
	// The sparse invariant itself: materialized Received values are
	// B + U, not n·(B+U)/receiver fan-out.
	if got, want := len(net.bcastBlock)+len(net.uniArena), n+n; got != want {
		t.Fatalf("materialized %d Received values, want O(B+U) = %d", got, want)
	}
}

// The engine's scratch recycling must keep rounds independent: messages
// from round r must never leak into round r+1 inboxes and vice versa,
// even as the backing arrays are reused.
func TestRecycledBuffersDoNotLeakAcrossRounds(t *testing.T) {
	t.Parallel()
	net := New(Config{})
	sender := newRecorder(1,
		func(env *RoundEnv) { env.Broadcast(body("r1-a")); env.Broadcast(body("r1-b")) },
		func(env *RoundEnv) { env.Broadcast(body("r2-only")) },
		nil,
	)
	sink := newRecorder(2)
	if err := net.Add(sender); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(sink); err != nil {
		t.Fatal(err)
	}
	mustRounds(t, net, 3)
	if len(sink.received[1]) != 2 {
		t.Fatalf("round-2 inbox = %+v, want the two round-1 broadcasts", sink.received[1])
	}
	if len(sink.received[2]) != 1 || sink.received[2][0].encoded != string(wire.Encode(body("r2-only"))) {
		t.Fatalf("round-3 inbox = %+v, want exactly the round-2 broadcast", sink.received[2])
	}
}
