package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMinMax(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 4, 1, 5}
	if m, err := Mean(xs); err != nil || !almostEqual(m, 2.8) {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	if m, err := Min(xs); err != nil || m != 1 {
		t.Fatalf("Min = %v, %v", m, err)
	}
	if m, err := Max(xs); err != nil || m != 5 {
		t.Fatalf("Max = %v, %v", m, err)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	t.Parallel()
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Max(nil) err = %v", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("StdDev(nil) err = %v", err)
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Percentile(nil) err = %v", err)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summarize(nil) err = %v", err)
	}
}

func TestStdDev(t *testing.T) {
	t.Parallel()
	if sd, err := StdDev([]float64{2, 2, 2}); err != nil || sd != 0 {
		t.Fatalf("StdDev constant = %v, %v", sd, err)
	}
	sd, err := StdDev([]float64{1, 3})
	if err != nil || !almostEqual(sd, 1) {
		t.Fatalf("StdDev{1,3} = %v, %v", sd, err)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {10, 10}, {50, 50}, {95, 100}, {100, 100},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil || got != tt.want {
			t.Errorf("Percentile(%v) = %v (%v), want %v", tt.p, got, err, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2) || !almostEqual(fit.Intercept, 1) || !almostEqual(fit.R2, 1) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1 R² 1", fit)
	}
}

func TestLinearFitConstantData(t *testing.T) {
	t.Parallel()
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0) || !almostEqual(fit.Intercept, 4) {
		t.Fatalf("fit = %+v, want flat line at 4", fit)
	}
	if fit.R2 != 1 {
		t.Fatalf("R² of perfect flat fit = %v, want 1", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	t.Parallel()
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("degenerate x values accepted")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || !almostEqual(s.Mean, 2.5) || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P95 != 4 {
		t.Fatalf("P95 = %v, want 4", s.P95)
	}
}

// Property: Min ≤ Mean ≤ Max and Min ≤ P95 ≤ Max for any non-empty sample.
func TestSummaryOrderingProperty(t *testing.T) {
	t.Parallel()
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P95 && s.P95 <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: fitting data generated from a known line recovers it.
func TestLinearFitRecoversLineProperty(t *testing.T) {
	t.Parallel()
	prop := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw) / 4
		intercept := float64(interceptRaw)
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, slope) && almostEqual(fit.Intercept, intercept)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
