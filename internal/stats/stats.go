// Package stats provides the small statistical toolkit the experiment
// harness uses to turn raw simulator measurements into the quantities the
// paper's claims are stated in: summary statistics over seeds, and a
// least-squares linear fit used to check asymptotic shapes (rounds growing
// linearly in n for the rotor-coordinator, linearly in f for consensus).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	mean, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// Fit is a least-squares line y = Slope·x + Intercept with its coefficient
// of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line through (xs[i], ys[i]). The harness
// uses it to verify complexity orders: a claim "rounds = O(n)" passes when
// rounds-vs-n fits a line with high R² and the quadratic residual is
// negligible, and a claim "constant" passes when the slope is ~0.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sumX, sumY, sumXY, sumXX float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXY += xs[i] * ys[i]
		sumXX += xs[i] * xs[i]
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sumXY - sumX*sumY) / denom
	intercept := (sumY - slope*sumX) / n

	meanY := sumY / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Summary bundles the statistics the experiment tables print per cell.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P95    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	minV, _ := Min(xs)
	maxV, _ := Max(xs)
	sd, _ := StdDev(xs)
	p95, _ := Percentile(xs, 95)
	return Summary{N: len(xs), Mean: mean, Min: minV, Max: maxV, StdDev: sd, P95: p95}, nil
}
