// Package census implements n_v tracking and the quorum arithmetic of the
// id-only model.
//
// Nodes in the id-only model do not know n (the number of nodes) or f (the
// bound on Byzantine nodes). The paper's central device is to replace both
// with n_v — the number of distinct nodes that sent at least one message
// to node v up to the current round — and the thresholds n_v/3 and 2n_v/3.
// Because every correct node transmits in the first round, n_v is at least
// the number of correct nodes g, and because a node can receive from at
// most n nodes, n_v ≤ n; these two bounds drive every lemma in the paper.
//
// Census is that bookkeeping: a monotone set of observed sender ids, plus
// the exact threshold comparisons ("at least n_v/3", "at least 2n_v/3",
// "less than n_v/3") in overflow-safe integer arithmetic.
package census

import "uba/internal/ids"

// Census records the distinct nodes a given node has received at least
// one message from. The zero value is an empty census ready to use.
type Census struct {
	seen map[ids.ID]struct{}
}

// New returns an empty census.
func New() *Census {
	return &Census{seen: make(map[ids.ID]struct{})}
}

// Observe records that a message from sender has been received. It
// reports whether the sender was new to the census.
func (c *Census) Observe(sender ids.ID) bool {
	if c.seen == nil {
		c.seen = make(map[ids.ID]struct{})
	}
	if _, ok := c.seen[sender]; ok {
		return false
	}
	c.seen[sender] = struct{}{}
	return true
}

// N returns n_v, the number of distinct observed senders.
func (c *Census) N() int { return len(c.seen) }

// Contains reports whether sender has been observed.
func (c *Census) Contains(sender ids.ID) bool {
	_, ok := c.seen[sender]
	return ok
}

// Members returns the observed sender ids as an ordered set.
func (c *Census) Members() *ids.Set {
	s := ids.NewSet()
	for id := range c.seen {
		s.Add(id)
	}
	return s
}

// Freeze returns an immutable snapshot of the census. The consensus
// algorithm (Alg 3) freezes n_v after initialization and thereafter only
// accepts messages from ids counted during initialization.
func (c *Census) Freeze() Frozen {
	members := make(map[ids.ID]struct{}, len(c.seen))
	for id := range c.seen {
		members[id] = struct{}{}
	}
	return Frozen{members: members}
}

// Frozen is an immutable census snapshot.
type Frozen struct {
	members map[ids.ID]struct{}
}

// N returns the frozen n_v.
func (f Frozen) N() int { return len(f.members) }

// Contains reports whether sender was part of the snapshot.
func (f Frozen) Contains(sender ids.ID) bool {
	_, ok := f.members[sender]
	return ok
}

// Members returns the snapshot membership as an ordered set.
func (f Frozen) Members() *ids.Set {
	s := ids.NewSet()
	for id := range f.members {
		s.Add(id)
	}
	return s
}

// AtLeastThird reports count ≥ n/3, the paper's "received at least n_v/3
// messages" condition, computed as 3·count ≥ n to avoid rationals.
func AtLeastThird(count, n int) bool { return 3*count >= n }

// AtLeastTwoThirds reports count ≥ 2n/3, the paper's "received at least
// 2n_v/3 messages" condition, computed as 3·count ≥ 2n.
func AtLeastTwoThirds(count, n int) bool { return 3*count >= 2*n }

// LessThanThird reports count < n/3, the condition under which the
// consensus algorithm adopts the coordinator's opinion.
func LessThanThird(count, n int) bool { return 3*count < n }

// DiscardCount returns ⌊n/3⌋, the number of extreme values the
// approximate-agreement algorithm discards from each end.
func DiscardCount(n int) int { return n / 3 }
