package census

import (
	"testing"
	"testing/quick"

	"uba/internal/ids"
)

func TestObserveCountsDistinctSenders(t *testing.T) {
	t.Parallel()
	c := New()
	if c.N() != 0 {
		t.Fatalf("empty census N = %d", c.N())
	}
	if !c.Observe(3) {
		t.Fatal("first observation should be new")
	}
	if c.Observe(3) {
		t.Fatal("repeat observation should not be new")
	}
	c.Observe(9)
	c.Observe(1)
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	if !c.Contains(9) || c.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestZeroValueCensusIsUsable(t *testing.T) {
	t.Parallel()
	var c Census
	if c.N() != 0 || c.Contains(1) {
		t.Fatal("zero census not empty")
	}
	if !c.Observe(1) || c.N() != 1 {
		t.Fatal("zero census Observe failed")
	}
}

func TestFreezeSnapshotIsImmutable(t *testing.T) {
	t.Parallel()
	c := New()
	c.Observe(10)
	c.Observe(20)
	frozen := c.Freeze()
	c.Observe(30)
	if frozen.N() != 2 {
		t.Fatalf("frozen N = %d, want 2", frozen.N())
	}
	if frozen.Contains(30) {
		t.Fatal("frozen snapshot saw later observation")
	}
	if !frozen.Contains(10) || !frozen.Contains(20) {
		t.Fatal("frozen snapshot lost members")
	}
	members := frozen.Members()
	if members.Len() != 2 || !members.Contains(10) || !members.Contains(20) {
		t.Fatalf("frozen members = %v", members.Members())
	}
}

func TestMembersOrdered(t *testing.T) {
	t.Parallel()
	c := New()
	for _, id := range []ids.ID{9, 2, 77, 5} {
		c.Observe(id)
	}
	got := c.Members().Members()
	want := []ids.ID{2, 5, 9, 77}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
}

func TestThresholdArithmetic(t *testing.T) {
	t.Parallel()
	tests := []struct {
		count, n                              int
		atLeastThird, atLeastTwoThirds, below bool
	}{
		// n = 9: n/3 = 3, 2n/3 = 6.
		{2, 9, false, false, true},
		{3, 9, true, false, false},
		{5, 9, true, false, false},
		{6, 9, true, true, false},
		{9, 9, true, true, false},
		// n = 10: n/3 = 3.33..., 2n/3 = 6.66... "At least n/3" is a
		// rational comparison in the paper, so count 4 is needed for
		// strict integers? No: count=4 ≥ 3.34 and count=3 < 3.34 is
		// false since 3 ≥ 10/3 fails (9 < 10).
		{3, 10, false, false, true},
		{4, 10, true, false, false},
		{6, 10, true, false, false},
		{7, 10, true, true, false},
		// n = 0 (before any message): every count passes ≥ 0.
		{0, 0, true, true, false},
		// Exact thirds: n = 12.
		{4, 12, true, false, false},
		{8, 12, true, true, false},
	}
	for _, tt := range tests {
		if got := AtLeastThird(tt.count, tt.n); got != tt.atLeastThird {
			t.Errorf("AtLeastThird(%d, %d) = %v, want %v", tt.count, tt.n, got, tt.atLeastThird)
		}
		if got := AtLeastTwoThirds(tt.count, tt.n); got != tt.atLeastTwoThirds {
			t.Errorf("AtLeastTwoThirds(%d, %d) = %v, want %v", tt.count, tt.n, got, tt.atLeastTwoThirds)
		}
		if got := LessThanThird(tt.count, tt.n); got != tt.below {
			t.Errorf("LessThanThird(%d, %d) = %v, want %v", tt.count, tt.n, got, tt.below)
		}
	}
}

func TestDiscardCount(t *testing.T) {
	t.Parallel()
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 1}, {6, 2}, {10, 3}, {300, 100},
	}
	for _, tt := range tests {
		if got := DiscardCount(tt.n); got != tt.want {
			t.Errorf("DiscardCount(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// Property: the three comparisons are consistent with exact rational
// arithmetic (count ≥ n/3 ⟺ 3·count ≥ n, etc.) for all non-negative
// inputs.
func TestThresholdsMatchRationalArithmetic(t *testing.T) {
	t.Parallel()
	prop := func(c, n uint16) bool {
		count, total := int(c%2000), int(n%2000)
		if AtLeastThird(count, total) != (3*count >= total) {
			return false
		}
		if AtLeastTwoThirds(count, total) != (3*count >= 2*total) {
			return false
		}
		if LessThanThird(count, total) == AtLeastThird(count, total) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property (core of the paper's Significance section): if all g > 2f
// correct nodes broadcast, then for every node v with n_v = g + f'_v
// (f'_v ≤ f faulty contacts), the correct count g passes the 2n_v/3
// threshold and the faulty count f'_v fails the n_v/3 threshold whenever
// f'_v < (g+f'_v)/3. This is the arithmetic backbone of Lemma rn-g1.
func TestQuorumArithmeticBackbone(t *testing.T) {
	t.Parallel()
	prop := func(fRaw, fvRaw uint8) bool {
		f := int(fRaw%50) + 1
		g := 2*f + 1 + int(fvRaw%10) // any g > 2f
		fv := int(fvRaw) % (f + 1)   // any f'_v ≤ f
		nv := g + fv
		// All correct nodes broadcasting always reach 2n_v/3.
		if !AtLeastTwoThirds(g, nv) {
			return false
		}
		// Byzantine-only senders can reach n_v/3 only if 3·f'_v ≥ n_v;
		// check the comparison agrees with that exact condition.
		return AtLeastThird(fv, nv) == (3*fv >= nv)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
