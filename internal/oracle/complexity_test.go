package oracle

import (
	"strings"
	"testing"

	"uba/internal/complexity"
	"uba/internal/simnet"
)

func acct(nodes, maxB, maxU int) simnet.RoundAccounting {
	return simnet.RoundAccounting{
		Nodes:                nodes,
		CorrectMaxBroadcasts: maxB,
		CorrectMaxUnicasts:   maxU,
	}
}

// TestComplexityOracleBounds pins the firing boundary on both kinds: a
// Linear broadcast contract with slack 2 allows exactly 2n per node,
// and a None unicast contract tolerates nothing.
func TestComplexityOracleBounds(t *testing.T) {
	t.Parallel()
	o := NewComplexity("fam", complexity.Contract{Broadcasts: complexity.Linear}, 2)
	if o.Name() != "complexity:fam" {
		t.Errorf("Name() = %q", o.Name())
	}
	if v := o.ObserveStats(3, acct(10, 20, 0)); v != nil {
		t.Errorf("at the bound (20 = 2*10): unexpected violation %+v", v)
	}
	v := o.ObserveStats(3, acct(10, 21, 0))
	if v == nil {
		t.Fatal("one past the bound: no violation")
	}
	if v.Round != 3 || !strings.Contains(v.Detail, "21 broadcasts") {
		t.Errorf("violation = %+v", v)
	}
	if v := o.ObserveStats(4, acct(10, 0, 1)); v == nil {
		t.Error("unicast under a 0 contract: no violation")
	} else if !strings.Contains(v.Detail, "unicasts") {
		t.Errorf("violation blames the wrong kind: %+v", v)
	}
	if v := o.ObserveStats(5, acct(10, 0, 0)); v != nil {
		t.Errorf("silent round: unexpected violation %+v", v)
	}
}

// TestNewComplexityFor checks the registry lookup path: certified
// families get an oracle, unknown ones get nil (attach nothing).
func TestNewComplexityFor(t *testing.T) {
	t.Parallel()
	o := NewComplexityFor("relbcast", 0)
	if o == nil {
		t.Fatal("no oracle for relbcast")
	}
	// relbcast is broadcasts=O(n) unicasts=0 with the default slack.
	n := 5
	bound := DefaultComplexitySlack * n
	if v := o.ObserveStats(1, acct(n, bound, 0)); v != nil {
		t.Errorf("at default bound: %+v", v)
	}
	if v := o.ObserveStats(1, acct(n, bound+1, 0)); v == nil {
		t.Error("past default bound: no violation")
	}
	if o := NewComplexityFor("earlydecide", 0); o != nil {
		t.Errorf("oracle for unregistered family: %v", o.Name())
	}
}

// TestSuiteObserveRoundStats checks the suite fans accounting out to
// StatsOracles, records the first violation, and never re-fires an
// oracle that already reported.
func TestSuiteObserveRoundStats(t *testing.T) {
	t.Parallel()
	s := NewSuite()
	s.Add(NewComplexity("fam", complexity.Contract{}, 1)) // all-zero contract
	s.ObserveRoundStats(1, acct(4, 0, 0))
	if s.Failed() {
		t.Fatalf("clean round fired: %+v", s.Violations())
	}
	s.ObserveRoundStats(2, acct(4, 1, 1))
	s.ObserveRoundStats(3, acct(4, 1, 1))
	vs := s.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1 (oracle must fire once)", len(vs))
	}
	if vs[0].Round != 2 || vs[0].Oracle != "complexity:fam" {
		t.Errorf("first violation = %+v", vs[0])
	}
}
