package oracle

import (
	"uba/internal/trace"
)

// This file is the graceful-degradation layer for fault-plan runs
// (simnet.FaultPlan): liveness monitors cannot distinguish "the
// protocol is stuck" from "the network was partitioned", so a chaos
// campaign that injects partitions or link loss would drown in false
// terminations. NewDegraded suspends a wrapped monitor while the
// network is disrupted and warps its round clock by the time lost, so
// a round bound measures rounds of *usable* network, not wall rounds.
//
// Safety monitors (agreement, validity of decided values, no-forged-
// sender) stay unconditional: a partition never excuses disagreement.
// Only liveness- and progress-flavored oracles should be wrapped —
// chaos wraps by name (see internal/chaos).

// degraded suspends an inner oracle while the network is disrupted.
type degraded struct {
	inner    Oracle
	recovery int
	// partition reports a live partition (between a partition event and
	// the next heal).
	partition bool
	// lastDisrupt is the most recent round with a disruption event
	// (partition, heal, or any link-fault activity); 0 = never.
	lastDisrupt int
	// suspended counts rounds skipped so far; the inner oracle's round
	// clock runs `suspended` rounds behind the simulation's.
	suspended int
}

// NewDegraded wraps a liveness oracle for graceful degradation under an
// adversarial network: while a partition is live, and for `recovery`
// rounds after the last disruption (a partition, a heal, or link-level
// drop/corrupt/duplicate/reorder activity), the inner oracle is not
// consulted at all and the round is not charged to it. When the
// network has been quiet for `recovery` rounds, the inner oracle
// resumes with a warped round clock — Observe(round - suspendedRounds)
// — so e.g. a termination bound of B means "B rounds of undisrupted
// network", not B wall rounds. A violation the inner oracle reports is
// re-stamped with the real simulation round.
func NewDegraded(inner Oracle, recovery int) Oracle {
	if recovery < 0 {
		recovery = 0
	}
	return &degraded{inner: inner, recovery: recovery}
}

// Name implements Oracle.
func (d *degraded) Name() string { return d.inner.Name() }

// disrupted reports whether the given round's events mark the network
// as disrupted, updating the partition state.
func (d *degraded) disrupted(round int, events []trace.Event) bool {
	for i := range events {
		switch events[i].Kind {
		case trace.KindPartition:
			d.partition = true
			d.lastDisrupt = round
		case trace.KindHeal:
			d.partition = false
			d.lastDisrupt = round
		case trace.KindLinkDrop, trace.KindLinkCorrupt,
			trace.KindLinkDup, trace.KindLinkReorder:
			// Both rule activations and per-link fault events land
			// here: a live loss rule disrupts even on rounds where no
			// specific message happened to be hit.
			d.lastDisrupt = round
		}
	}
	return d.partition || (d.lastDisrupt > 0 && round-d.lastDisrupt < d.recovery)
}

// Observe implements Oracle.
func (d *degraded) Observe(round int, events []trace.Event) *Violation {
	if d.disrupted(round, events) {
		d.suspended++
		return nil
	}
	v := d.inner.Observe(round-d.suspended, events)
	if v != nil {
		// The inner oracle saw the warped clock; the report should
		// carry the real simulation round.
		v.Round = round
	}
	return v
}

// Wrap applies f to every oracle in the suite, replacing each with the
// non-nil results — the hook chaos uses to wrap liveness oracles in
// NewDegraded by name. Returning nil keeps the original oracle.
func (s *Suite) Wrap(f func(Oracle) Oracle) {
	for i, o := range s.oracles {
		if w := f(o); w != nil {
			s.oracles[i] = w
		}
	}
}
