package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"uba/internal/core/consensus"
	"uba/internal/core/relbcast"
	"uba/internal/ids"
	"uba/internal/simnet"
	"uba/internal/trace"
	"uba/internal/wire"
)

func TestAgreementOracle(t *testing.T) {
	t.Parallel()
	claims := []Claim{
		{Node: 1, Key: "decision", Value: "a"},
		{Node: 2, Key: "decision", Value: "a"},
		{Node: 3, Key: "other", Value: "b"},
	}
	o := NewAgreement("agree", func() []Claim { return claims })
	if v := o.Observe(1, nil); v != nil {
		t.Fatalf("agreeing claims fired: %+v", v)
	}
	claims = append(claims, Claim{Node: 4, Key: "decision", Value: "z"})
	v := o.Observe(2, nil)
	if v == nil {
		t.Fatal("disagreement not detected")
	}
	if v.Oracle != "agree" || v.Round != 2 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, "nodes 1 and 4") {
		t.Fatalf("detail %q does not name the disagreeing nodes", v.Detail)
	}
}

func TestValidityOracle(t *testing.T) {
	t.Parallel()
	claims := []Claim{{Node: 7, Key: "decision", Value: "good"}}
	o := NewValidity("valid", func() []Claim { return claims },
		func(c Claim) bool { return c.Value == "good" })
	if v := o.Observe(1, nil); v != nil {
		t.Fatalf("valid claim fired: %+v", v)
	}
	claims[0].Value = "evil"
	if v := o.Observe(2, nil); v == nil || v.Round != 2 {
		t.Fatalf("invalid claim not detected: %+v", v)
	}
}

func TestTerminationBoundOracle(t *testing.T) {
	t.Parallel()
	pending := []ids.ID{4, 9}
	o := NewTerminationBound("term", 10, func() []ids.ID { return pending })
	if v := o.Observe(9, nil); v != nil {
		t.Fatalf("fired before the bound: %+v", v)
	}
	if v := o.Observe(10, nil); v == nil {
		t.Fatal("pending nodes at the bound not detected")
	}
	pending = nil
	if v := o.Observe(11, nil); v != nil {
		t.Fatalf("fired with nothing pending: %+v", v)
	}
}

// rbEvent fabricates a delivery event for an RBMessage.
func rbEvent(round int, from ids.ID, p wire.RBMessage) trace.Event {
	return trace.Event{
		Round: round,
		From:  uint64(from),
		To:    1,
		Kind:  p.Kind().String(),
		Enc:   string(wire.Encode(p)),
	}
}

func TestNoForgedSenderOracle(t *testing.T) {
	t.Parallel()
	correct := ids.NewSet(10, 20, 30)
	var accepted []RBAcceptance
	o := NewNoForgedSender("forge", correct, func() []RBAcceptance { return accepted })

	// Round 1: node 10 genuinely broadcasts (m, 10); node 20 accepts it.
	events := []trace.Event{rbEvent(1, 10, wire.RBMessage{Source: 10, Body: []byte("m")})}
	accepted = []RBAcceptance{{Node: 20, Source: 10, Body: []byte("m")}}
	if v := o.Observe(1, events); v != nil {
		t.Fatalf("genuine acceptance fired: %+v", v)
	}

	// Byzantine-source acceptances are never violations.
	accepted = append(accepted, RBAcceptance{Node: 20, Source: 99, Body: []byte("x")})
	if v := o.Observe(2, nil); v != nil {
		t.Fatalf("byzantine-source acceptance fired: %+v", v)
	}

	// Accepting a pair the correct source never sent is a violation.
	accepted = append(accepted, RBAcceptance{Node: 30, Source: 10, Body: []byte("forged")})
	v := o.Observe(3, nil)
	if v == nil || !strings.Contains(v.Detail, "forged") {
		t.Fatalf("forged acceptance not detected: %+v", v)
	}

	// A correct node transmitting a foreign-source rbmessage is flagged.
	o2 := NewNoForgedSender("forge", correct, func() []RBAcceptance { return nil })
	bad := []trace.Event{rbEvent(1, 20, wire.RBMessage{Source: 10, Body: []byte("m")})}
	if v := o2.Observe(1, bad); v == nil {
		t.Fatal("correct node relaying a foreign source not detected")
	}
}

func TestSuiteRecordsFirstViolationPerOracle(t *testing.T) {
	t.Parallel()
	fires := 0
	always := NewFunc("always", func(round int, _ []trace.Event) *Violation {
		fires++
		return &Violation{Oracle: "always", Round: round, Detail: "boom"}
	})
	quiet := NewFunc("quiet", func(int, []trace.Event) *Violation { return nil })
	s := NewSuite(always, quiet)
	for r := 1; r <= 5; r++ {
		s.ObserveRound(r, nil)
	}
	if fires != 1 {
		t.Fatalf("fired oracle observed %d times, want 1", fires)
	}
	if got := s.Violations(); len(got) != 1 || got[0].Round != 1 {
		t.Fatalf("violations = %+v", got)
	}
	if !s.Failed() || s.First() == nil || s.First().Oracle != "always" {
		t.Fatalf("First() = %+v", s.First())
	}
}

// TestConsensusOraclesCleanRun attaches the consensus suite to a fully
// correct run and requires silence.
func TestConsensusOraclesCleanRun(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	nodeIDs := ids.Sparse(rng, 5)
	nodes := make([]*consensus.Node, 0, len(nodeIDs))
	inputs := make([]wire.Value, 0, len(nodeIDs))
	for i, id := range nodeIDs {
		in := wire.V(float64(i % 2))
		inputs = append(inputs, in)
		nodes = append(nodes, consensus.New(id, in))
	}
	suite := NewSuite(ForConsensus(nodes, inputs, 300)...)
	net := simnet.New(simnet.Config{MaxRounds: 300, Observer: suite})
	for _, n := range nodes {
		if err := net.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(simnet.AllDone(nodeIDs)); err != nil {
		t.Fatal(err)
	}
	if suite.Failed() {
		t.Fatalf("clean run violated: %+v", suite.Violations())
	}
}

// TestBroadcastOraclesCleanRun feeds the unforgeability monitor real
// wire traffic: a correct source's broadcast must be learned as genuine
// and the acceptances must pass.
func TestBroadcastOraclesCleanRun(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	nodeIDs := ids.Sparse(rng, 5)
	nodes := make([]*relbcast.Node, 0, len(nodeIDs))
	for i, id := range nodeIDs {
		if i == 0 {
			nodes = append(nodes, relbcast.NewSource(id, []byte("hello")))
		} else {
			nodes = append(nodes, relbcast.NewRelay(id))
		}
	}
	suite := NewSuite(ForBroadcast(nodes, ids.NewSet(nodeIDs...))...)
	net := simnet.New(simnet.Config{MaxRounds: 50, Observer: suite})
	for _, n := range nodes {
		if err := net.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := net.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nodes[1].HasAccepted(nodeIDs[0], []byte("hello")); !ok {
		t.Fatal("fixture broken: broadcast never accepted")
	}
	if suite.Failed() {
		t.Fatalf("clean broadcast run violated: %+v", suite.Violations())
	}
}

// TestSuiteViolationIsDeterministic runs the same planted-disagreement
// scenario twice and requires identical violations.
func TestSuiteViolationIsDeterministic(t *testing.T) {
	t.Parallel()
	run := func() []Violation {
		rng := rand.New(rand.NewSource(9))
		nodeIDs := ids.Sparse(rng, 4)
		round := 0
		probe := func() []Claim {
			if round < 3 {
				return nil
			}
			// Planted: nodes report diverging decisions from round 3 on.
			return []Claim{
				{Node: nodeIDs[0], Key: "decision", Value: "0"},
				{Node: nodeIDs[1], Key: "decision", Value: "1"},
			}
		}
		suite := NewSuite(NewAgreement("planted-agreement", probe))
		net := simnet.New(simnet.Config{MaxRounds: 10, Observer: suite})
		for _, id := range nodeIDs {
			if err := net.Add(&simnet.ChatterProcess{Ident: id}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			round = i + 1
			if err := net.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return suite.Violations()
	}
	a := run()
	b := run()
	if len(a) != 1 || a[0].Round != 3 {
		t.Fatalf("violations = %+v, want one at round 3", a)
	}
	if len(b) != 1 || a[0] != b[0] {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}
