package oracle

import (
	"fmt"
	"strings"

	"uba/internal/core/approx"
	"uba/internal/core/consensus"
	"uba/internal/core/ordering"
	"uba/internal/core/relbcast"
	"uba/internal/core/renaming"
	"uba/internal/core/rotor"
	"uba/internal/ids"
	"uba/internal/trace"
	"uba/internal/wire"
)

// This file builds the standard oracle set for each protocol family of
// the library. Every constructor takes the *correct* protocol nodes (the
// monitors state properties over correct nodes only; Byzantine slots may
// do anything) and returns oracles ready for a Suite.

// ForConsensus monitors a consensus run (Algorithm 3 / parallel
// consensus instance 0): agreement (no two decided nodes output
// different values), validity (every output was some node's input), and
// termination within `bound` rounds.
func ForConsensus(nodes []*consensus.Node, inputs []wire.Value, bound int) []Oracle {
	probe := func() []Claim {
		out := make([]Claim, 0, len(nodes))
		for _, n := range nodes {
			if v, ok := n.Output(); ok {
				out = append(out, Claim{Node: n.ID(), Key: "decision", Value: ValueString(v)})
			}
		}
		return out
	}
	valid := make(map[string]bool, len(inputs))
	for _, x := range inputs {
		valid[ValueString(x)] = true
	}
	return []Oracle{
		NewAgreement("consensus-agreement", probe),
		NewValidity("consensus-validity", probe, func(c Claim) bool { return valid[c.Value] }),
		NewTerminationBound("consensus-termination", bound, func() []ids.ID {
			return pendingIDs(len(nodes), func(i int) (ids.ID, bool) {
				return nodes[i].ID(), nodes[i].Done()
			})
		}),
	}
}

// ForBroadcast monitors reliable broadcast (Algorithm 1): unforgeability
// (no acceptance of a pair a correct source never sent) and totality
// (a pair accepted in round r is accepted everywhere by r+1).
func ForBroadcast(nodes []*relbcast.Node, correct *ids.Set) []Oracle {
	accepted := func() []RBAcceptance {
		var out []RBAcceptance
		for _, n := range nodes {
			for _, acc := range n.Accepted() {
				out = append(out, RBAcceptance{Node: n.ID(), Source: acc.Source, Body: acc.Body})
			}
		}
		return out
	}
	totality := func(round int, _ []trace.Event) *Violation {
		for _, n := range nodes {
			for _, acc := range n.Accepted() {
				if acc.Round+1 > round {
					continue // grace round still open
				}
				for _, other := range nodes {
					if _, ok := other.HasAccepted(acc.Source, acc.Body); !ok {
						return &Violation{
							Oracle: "broadcast-totality",
							Round:  round,
							Detail: fmt.Sprintf("node %d accepted (%q, %d) in round %d but node %d has not by round %d",
								n.ID(), acc.Body, acc.Source, acc.Round, other.ID(), round),
						}
					}
				}
			}
		}
		return nil
	}
	return []Oracle{
		NewNoForgedSender("broadcast-unforgeability", correct, accepted),
		NewFunc("broadcast-totality", totality),
	}
}

// ForRotor monitors the rotor-coordinator (Algorithm 2): agreement on
// accepted opinions (no two nodes accept different opinions from the
// same coordinator slot) and termination within `bound` rounds.
func ForRotor(nodes []*rotor.Node, bound int) []Oracle {
	probe := func() []Claim {
		var out []Claim
		for _, n := range nodes {
			for _, a := range n.AcceptedOpinions() {
				out = append(out, Claim{
					Node:  n.ID(),
					Key:   fmt.Sprintf("opinion:r%d:%d", a.Round, a.From),
					Value: ValueString(a.X),
				})
			}
		}
		return out
	}
	return []Oracle{
		NewAgreement("rotor-agreement", probe),
		NewTerminationBound("rotor-termination", bound, func() []ids.ID {
			return pendingIDs(len(nodes), func(i int) (ids.ID, bool) {
				return nodes[i].ID(), nodes[i].Done()
			})
		}),
	}
}

// ForApprox monitors approximate agreement (Algorithm 4): outputs of
// terminated nodes within eps of each other, outputs inside the correct
// input range [lo, hi], and termination within `bound` rounds.
func ForApprox(nodes []*approx.Node, eps, lo, hi float64, bound int) []Oracle {
	band := func(round int, _ []trace.Event) *Violation {
		haveFirst := false
		var min, max float64
		var minNode, maxNode ids.ID
		for _, n := range nodes {
			out, ok := n.Output()
			if !ok {
				continue
			}
			if !haveFirst || out < min {
				min, minNode = out, n.ID()
			}
			if !haveFirst || out > max {
				max, maxNode = out, n.ID()
			}
			haveFirst = true
		}
		if haveFirst && max-min > eps {
			return &Violation{
				Oracle: "approx-agreement",
				Round:  round,
				Detail: fmt.Sprintf("outputs %g (node %d) and %g (node %d) differ by more than eps=%g",
					min, minNode, max, maxNode, eps),
			}
		}
		return nil
	}
	inRange := func(round int, _ []trace.Event) *Violation {
		for _, n := range nodes {
			x, ok := n.Output()
			if ok && (x < lo || x > hi) {
				return &Violation{
					Oracle: "approx-validity",
					Round:  round,
					Detail: fmt.Sprintf("node %d output %g outside correct input range [%g, %g]",
						n.ID(), x, lo, hi),
				}
			}
		}
		return nil
	}
	return []Oracle{
		NewFunc("approx-agreement", band),
		NewFunc("approx-validity", inRange),
		NewTerminationBound("approx-termination", bound, func() []ids.ID {
			return pendingIDs(len(nodes), func(i int) (ids.ID, bool) {
				return nodes[i].ID(), nodes[i].Done()
			})
		}),
	}
}

// ForRenaming monitors Byzantine renaming: terminated nodes agree on the
// final id set, new names are unique, every correct id is named, and
// termination within `bound` rounds.
func ForRenaming(nodes []*renaming.Node, bound int) []Oracle {
	probe := func() []Claim {
		var out []Claim
		for _, n := range nodes {
			if !n.Done() {
				continue
			}
			out = append(out, Claim{Node: n.ID(), Key: "final-set", Value: setString(n.FinalSet())})
		}
		return out
	}
	unique := func(round int, _ []trace.Event) *Violation {
		taken := make(map[int]ids.ID)
		for _, n := range nodes {
			name, ok := n.NewName()
			if !ok {
				continue
			}
			if prev, dup := taken[name]; dup {
				return &Violation{
					Oracle: "renaming-uniqueness",
					Round:  round,
					Detail: fmt.Sprintf("nodes %d and %d both renamed to %d", prev, n.ID(), name),
				}
			}
			taken[name] = n.ID()
		}
		return nil
	}
	return []Oracle{
		NewAgreement("renaming-agreement", probe),
		NewFunc("renaming-uniqueness", unique),
		NewTerminationBound("renaming-termination", bound, func() []ids.ID {
			return pendingIDs(len(nodes), func(i int) (ids.ID, bool) {
				return nodes[i].ID(), nodes[i].Done()
			})
		}),
	}
}

// ForOrdering monitors the dynamic total-ordering protocol: finalized
// chains are prefix-consistent across nodes (keyed by chain position, so
// nodes at different finalization horizons compare only the shared
// prefix).
func ForOrdering(nodes []*ordering.Node) []Oracle {
	probe := func() []Claim {
		var out []Claim
		for _, n := range nodes {
			for i, e := range n.Chain() {
				out = append(out, Claim{
					Node:  n.ID(),
					Key:   fmt.Sprintf("chain:%d", i),
					Value: e.String(),
				})
			}
		}
		return out
	}
	return []Oracle{NewAgreement("ordering-agreement", probe)}
}

// pendingIDs collects the ids of not-yet-done nodes.
func pendingIDs(n int, at func(i int) (ids.ID, bool)) []ids.ID {
	var out []ids.ID
	for i := 0; i < n; i++ {
		id, done := at(i)
		if !done {
			out = append(out, id)
		}
	}
	return out
}

// setString canonically encodes an id set (members are sorted).
func setString(s *ids.Set) string {
	var b strings.Builder
	for i, id := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}
