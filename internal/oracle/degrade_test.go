package oracle

import (
	"strings"
	"testing"

	"uba/internal/ids"
	"uba/internal/trace"
)

// Synthetic disruption events for driving a degraded oracle directly.
func partitionEvent(round int) trace.Event {
	return trace.Event{Round: round, Kind: trace.KindPartition, Size: 2}
}

func healEvent(round int) trace.Event {
	return trace.Event{Round: round, Kind: trace.KindHeal}
}

func dropEvent(round int) trace.Event {
	return trace.Event{Round: round, Kind: trace.KindLinkDrop, From: 1, To: 2}
}

// TestDegradedSuspendsDuringPartition asserts the wrapped oracle is not
// consulted while a partition is live nor during the recovery window,
// and that suspended rounds are not charged to its round clock.
func TestDegradedSuspendsDuringPartition(t *testing.T) {
	t.Parallel()
	var seen []int
	inner := NewFunc("probe", func(round int, _ []trace.Event) *Violation {
		seen = append(seen, round)
		return nil
	})
	d := NewDegraded(inner, 2)
	feed := func(round int, events ...trace.Event) {
		if v := d.Observe(round, events); v != nil {
			t.Fatalf("round %d: unexpected violation %+v", round, v)
		}
	}
	feed(1)
	feed(2, partitionEvent(2)) // suspended
	feed(3)                    // still partitioned
	feed(4, healEvent(4))      // heal: disruption round
	feed(5)                    // within recovery window (5-4 < 2)
	feed(6)                    // quiet for 2 rounds: resumes
	feed(7)
	// Rounds 2-5 were suspended (4 rounds): the inner clock resumes at
	// 6-4 = 2.
	want := []int{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("inner oracle saw rounds %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("inner oracle saw rounds %v, want %v", seen, want)
		}
	}
}

// TestDegradedTerminationUnderPartition is the end-to-end degradation
// story: a termination bound that a partition would push past its bound
// does not fire spuriously, because only undisrupted rounds count.
func TestDegradedTerminationUnderPartition(t *testing.T) {
	t.Parallel()
	pending := []ids.ID{7}
	inner := NewTerminationBound("x-termination", 5, func() []ids.ID { return pending })
	d := NewDegraded(inner, 1)
	// 10 wall rounds, of which rounds 2..7 are partitioned (6 suspended
	// rounds incl. the heal's recovery round 8... heal at 8, recovery 1
	// suspends round 8 too).
	for round := 1; round <= 10; round++ {
		var events []trace.Event
		if round == 2 {
			events = append(events, partitionEvent(round))
		}
		if round == 8 {
			events = append(events, healEvent(round))
		}
		if round == 4 {
			pending = nil // the protocol actually finished mid-partition
		}
		if v := d.Observe(round, events); v != nil {
			t.Fatalf("round %d: degraded termination fired spuriously: %+v", round, v)
		}
	}
}

// TestDegradedStillFiresAfterRecovery asserts degradation only delays —
// a protocol that stays stuck after the network has been quiet for the
// warped bound still trips the monitor, with the real round reported.
func TestDegradedStillFiresAfterRecovery(t *testing.T) {
	t.Parallel()
	inner := NewTerminationBound("x-termination", 3, func() []ids.ID { return []ids.ID{9} })
	d := NewDegraded(inner, 1)
	var fired *Violation
	for round := 1; round <= 10 && fired == nil; round++ {
		var events []trace.Event
		if round == 2 {
			events = append(events, partitionEvent(round))
		}
		if round == 4 {
			events = append(events, healEvent(round))
		}
		fired = d.Observe(round, events)
	}
	if fired == nil {
		t.Fatal("degraded termination never fired on a permanently stuck protocol")
	}
	// Rounds 2,3 partitioned + round 4 heal-recovery = 3 suspended
	// rounds; the warped clock reaches the bound (3) at wall round 6.
	if fired.Round != 6 {
		t.Fatalf("violation at wall round %d, want 6 (bound 3 + 3 suspended rounds)", fired.Round)
	}
	if !strings.Contains(fired.Detail, "round bound 3") {
		t.Fatalf("detail %q should reference the configured bound", fired.Detail)
	}
}

// TestDegradedLinkActivitySuspends asserts link-level fault events
// (drops, rule activations) count as disruption too.
func TestDegradedLinkActivitySuspends(t *testing.T) {
	t.Parallel()
	calls := 0
	inner := NewFunc("probe", func(int, []trace.Event) *Violation {
		calls++
		return nil
	})
	d := NewDegraded(inner, 2)
	d.Observe(1, []trace.Event{dropEvent(1)})
	d.Observe(2, nil) // within recovery
	d.Observe(3, nil) // quiet for 2 rounds: resumes
	if calls != 1 {
		t.Fatalf("inner oracle consulted %d times, want 1 (round 3 only)", calls)
	}
}

// TestDegradedAgreementStaysUnconditional is the self-test for the
// planted-violation acceptance criterion at the oracle layer: an
// UNWRAPPED agreement oracle fires mid-partition — degradation is a
// choice per oracle, never an excuse for disagreement.
func TestDegradedAgreementStaysUnconditional(t *testing.T) {
	t.Parallel()
	claims := []Claim{
		{Node: 1, Key: "decision", Value: "0"},
		{Node: 2, Key: "decision", Value: "1"},
	}
	suite := NewSuite(
		NewAgreement("x-agreement", func() []Claim { return claims }),
		NewTerminationBound("x-termination", 1, func() []ids.ID { return []ids.ID{1} }),
	)
	// Wrap only liveness oracles, as chaos does.
	suite.Wrap(func(o Oracle) Oracle {
		if strings.HasSuffix(o.Name(), "-termination") {
			return NewDegraded(o, 2)
		}
		return nil
	})
	suite.ObserveRound(1, []trace.Event{partitionEvent(1)})
	vs := suite.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %+v, want exactly the agreement violation", vs)
	}
	if vs[0].Oracle != "x-agreement" {
		t.Fatalf("fired oracle %q, want x-agreement (unconditional)", vs[0].Oracle)
	}
	if vs[0].Round != 1 {
		t.Fatalf("agreement violation at round %d, want 1", vs[0].Round)
	}
}
