// The complexity oracle is the runtime half of the message-complexity
// certification (DESIGN.md §8.7): ubalint proves each protocol's
// declared per-round send classes against its Step implementation
// statically, and this oracle cross-checks the same contract against
// the engine's observed per-round tallies during every campaign. The
// two halves fail independently — a lint pass bug cannot silently
// void the runtime bound, and vice versa.
package oracle

import (
	"fmt"

	"uba/internal/complexity"
	"uba/internal/simnet"
	"uba/internal/trace"
)

// DefaultComplexitySlack is the constant-factor slack the campaigns
// grant a contract's leading term: a Linear contract allows a correct
// node slack·n sends per round. The protocols here have small
// constants (the widest is relbcast's per-key echo fan, bounded by the
// distinct accepted keys per round), so a one-digit slack holds with
// room while still catching a quadratic regression at realistic n.
const DefaultComplexitySlack = 8

// NewComplexity builds the runtime complexity oracle for one protocol
// family: each round, the largest per-node broadcast and unicast
// tallies among correct senders must stay within the declared class's
// bound for the round's live-node count. Byzantine senders are already
// excluded by the engine's accounting — an adversary is free to flood.
// A zero or negative slack selects DefaultComplexitySlack.
func NewComplexity(family string, ct complexity.Contract, slack int) StatsOracle {
	if slack <= 0 {
		slack = DefaultComplexitySlack
	}
	return &complexityOracle{
		name:  "complexity:" + family,
		ct:    ct,
		slack: slack,
	}
}

// NewComplexityFor is NewComplexity with the contract looked up in the
// certified registry; it returns nil (attach nothing) for families
// without a registered contract.
func NewComplexityFor(family string, slack int) StatsOracle {
	ct, ok := complexity.Lookup(family)
	if !ok {
		return nil
	}
	return NewComplexity(family, ct, slack)
}

type complexityOracle struct {
	name  string
	ct    complexity.Contract
	slack int
}

func (o *complexityOracle) Name() string { return o.name }

// Observe implements Oracle; the complexity oracle reads the round
// ledger, not the event stream.
func (o *complexityOracle) Observe(round int, events []trace.Event) *Violation {
	return nil
}

// ObserveStats implements StatsOracle.
func (o *complexityOracle) ObserveStats(round int, acct simnet.RoundAccounting) *Violation {
	if v := o.exceeds(round, "broadcasts", o.ct.Broadcasts, acct.CorrectMaxBroadcasts, acct.Nodes); v != nil {
		return v
	}
	return o.exceeds(round, "unicasts", o.ct.Unicasts, acct.CorrectMaxUnicasts, acct.Nodes)
}

func (o *complexityOracle) exceeds(round int, kind string, c complexity.Class, observed, nodes int) *Violation {
	bound := c.Bound(nodes, o.slack)
	if observed <= bound {
		return nil
	}
	return &Violation{
		Oracle: o.name,
		Round:  round,
		Detail: fmt.Sprintf("correct node sent %d %s in round %d: contract %s allows at most %d (n=%d, slack=%d)",
			observed, kind, round, c, bound, nodes, o.slack),
	}
}
