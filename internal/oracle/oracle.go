// Package oracle provides online safety monitors for simulator runs: small
// observers that watch a run round by round and report the first round in
// which a protocol-level safety or liveness property is violated.
//
// An Oracle is fed each round's trace events (via a Suite attached as the
// network's simnet.RoundObserver) and may additionally probe protocol node
// state through Prober callbacks supplied by the per-family constructors
// (ForConsensus, ForBroadcast, ...). Catching a violation *online*, in the
// round it first becomes observable, is what makes the chaos campaign's
// failure shrinking (internal/chaos) possible: the shrinker re-runs a
// candidate configuration and asks only "does the same oracle still fire?".
//
// Oracles must be deterministic: given the same run they must report the
// same violation in the same round with the same detail string. All
// constructors here preserve that property (claims are compared in probe
// order, never in map-iteration order), which the determinism lint pass
// machine-checks (`make lint`).
package oracle

import (
	"fmt"
	"math"

	"uba/internal/ids"
	"uba/internal/simnet"
	"uba/internal/trace"
	"uba/internal/wire"
)

// Violation is one observed safety failure. It is serialized into chaos
// repro files, so the Detail string must be deterministic across runs.
type Violation struct {
	// Oracle is the name of the monitor that fired.
	Oracle string `json:"oracle"`
	// Round is the simulation round the violation became observable in.
	Round int `json:"round"`
	// Detail describes the failure (nodes and values involved).
	Detail string `json:"detail"`
}

// Oracle is one online safety monitor. Observe is called once per
// completed round with the round's trace events (delivery events carry
// the canonical wire encoding in Enc; containment events precede them).
// The events slice is reused by the engine and must not be retained.
// A non-nil return stops further Observe calls to this oracle.
type Oracle interface {
	// Name identifies the monitor in violations and repro files.
	Name() string
	// Observe checks one round; nil means no violation yet.
	Observe(round int, events []trace.Event) *Violation
}

// Claim is one node's statement about its protocol state, produced by a
// Prober. Claims with the same Key are compared across nodes: the
// agreement monitor requires their Values to be equal.
type Claim struct {
	// Node is the claiming node.
	Node ids.ID
	// Key names the decided quantity (e.g. "decision", "chain:3").
	Key string
	// Value is a canonical string encoding of the node's answer.
	Value string
}

// Prober extracts the current claims from protocol node state. Probers
// run at round boundaries on the driving goroutine, so they may touch
// node state freely; they must emit claims in deterministic order.
type Prober func() []Claim

// ValueString canonically encodes an opinion for Claim values: exact
// (bit-level, so Byzantine NaN payloads stay distinguishable) and
// deterministic.
func ValueString(v wire.Value) string {
	if v.IsBot {
		return "⊥"
	}
	return fmt.Sprintf("%g(%x)", v.X, math.Float64bits(v.X))
}

// agreement fires when two claims for the same key carry different values.
type agreement struct {
	name  string
	probe Prober
}

// NewAgreement returns a monitor of keyed agreement: for every Key, all
// nodes that claim it must claim the same Value. Nodes that have not yet
// decided simply emit no claim for the key, so the monitor is safe to run
// every round of an ongoing protocol.
func NewAgreement(name string, probe Prober) Oracle {
	return &agreement{name: name, probe: probe}
}

// Name implements Oracle.
func (a *agreement) Name() string { return a.name }

// Observe implements Oracle.
func (a *agreement) Observe(round int, _ []trace.Event) *Violation {
	claims := a.probe()
	first := make(map[string]Claim, len(claims))
	for _, c := range claims {
		prev, ok := first[c.Key]
		if !ok {
			first[c.Key] = c
			continue
		}
		if prev.Value != c.Value {
			return &Violation{
				Oracle: a.name,
				Round:  round,
				Detail: fmt.Sprintf("nodes %d and %d disagree on %q: %q vs %q",
					prev.Node, c.Node, c.Key, prev.Value, c.Value),
			}
		}
	}
	return nil
}

// validity fires when a claim fails a predicate.
type validity struct {
	name  string
	probe Prober
	valid func(Claim) bool
}

// NewValidity returns a monitor that checks every claim against a
// predicate — e.g. "every decided value was some node's input".
func NewValidity(name string, probe Prober, valid func(Claim) bool) Oracle {
	return &validity{name: name, probe: probe, valid: valid}
}

// Name implements Oracle.
func (v *validity) Name() string { return v.name }

// Observe implements Oracle.
func (v *validity) Observe(round int, _ []trace.Event) *Violation {
	for _, c := range v.probe() {
		if !v.valid(c) {
			return &Violation{
				Oracle: v.name,
				Round:  round,
				Detail: fmt.Sprintf("node %d claims invalid %q = %q", c.Node, c.Key, c.Value),
			}
		}
	}
	return nil
}

// terminationBound fires when nodes are still pending past a round bound.
type terminationBound struct {
	name    string
	bound   int
	pending func() []ids.ID
}

// NewTerminationBound returns a liveness monitor: by round `bound` the
// pending set must be empty. Crashed or removed nodes should be excluded
// by the caller's pending function.
func NewTerminationBound(name string, bound int, pending func() []ids.ID) Oracle {
	return &terminationBound{name: name, bound: bound, pending: pending}
}

// Name implements Oracle.
func (t *terminationBound) Name() string { return t.name }

// Observe implements Oracle.
func (t *terminationBound) Observe(round int, _ []trace.Event) *Violation {
	if round < t.bound {
		return nil
	}
	if p := t.pending(); len(p) > 0 {
		return &Violation{
			Oracle: t.name,
			Round:  round,
			Detail: fmt.Sprintf("%d nodes undecided at round bound %d (first: %d)",
				len(p), t.bound, p[0]),
		}
	}
	return nil
}

// funcOracle adapts a bare function to the Oracle interface.
type funcOracle struct {
	name string
	fn   func(round int, events []trace.Event) *Violation
}

// NewFunc wraps a function as an Oracle, for family-specific checks that
// do not fit the keyed-claim monitors (approximate agreement's epsilon
// band, renaming's name uniqueness, ...).
func NewFunc(name string, fn func(round int, events []trace.Event) *Violation) Oracle {
	return &funcOracle{name: name, fn: fn}
}

// Name implements Oracle.
func (f *funcOracle) Name() string { return f.name }

// Observe implements Oracle.
func (f *funcOracle) Observe(round int, events []trace.Event) *Violation {
	return f.fn(round, events)
}

// RBAcceptance is one reliable-broadcast acceptance probed from node
// state, checked by NewNoForgedSender.
type RBAcceptance struct {
	// Node is the accepting node.
	Node ids.ID
	// Source is s of the accepted (m, s).
	Source ids.ID
	// Body is m of the accepted (m, s).
	Body []byte
}

// noForgedSender tracks genuine reliable broadcasts from the wire and
// fires when a node accepts a (m, s) pair that a correct s never sent.
type noForgedSender struct {
	name     string
	correct  *ids.Set
	accepted func() []RBAcceptance
	// genuine holds (source, body) pairs actually broadcast by their
	// claimed source (delivery events where the engine-stamped sender
	// equals the payload's Source field).
	genuine map[string]struct{}
}

// NewNoForgedSender returns the unforgeability monitor for reliable
// broadcast: no node may accept (m, s) for a *correct* source s unless s
// really broadcast m. Genuine broadcasts are learned from the delivery
// events (the engine stamps true senders, so an rbmessage whose stamped
// sender equals its claimed source is genuine); acceptances are probed
// from node state. It also flags a correct node transmitting an rbmessage
// with a foreign source — something no correct implementation does.
func NewNoForgedSender(name string, correct *ids.Set, accepted func() []RBAcceptance) Oracle {
	return &noForgedSender{
		name:     name,
		correct:  correct,
		accepted: accepted,
		genuine:  make(map[string]struct{}),
	}
}

// Name implements Oracle.
func (o *noForgedSender) Name() string { return o.name }

// pairKey keys a (source, body) pair.
func pairKey(source ids.ID, body []byte) string {
	return fmt.Sprintf("%d|%x", source, body)
}

// Observe implements Oracle.
func (o *noForgedSender) Observe(round int, events []trace.Event) *Violation {
	for i := range events {
		e := &events[i]
		if e.Kind != wire.KindRBMessage.String() || e.Enc == "" {
			continue
		}
		p, err := wire.Decode([]byte(e.Enc))
		if err != nil {
			continue // engine fuzzing can deliver anything; not this oracle's concern
		}
		m, ok := p.(wire.RBMessage)
		if !ok {
			continue
		}
		if ids.ID(e.From) == m.Source {
			o.genuine[pairKey(m.Source, m.Body)] = struct{}{}
			continue
		}
		if o.correct.Contains(ids.ID(e.From)) {
			return &Violation{
				Oracle: o.name,
				Round:  round,
				Detail: fmt.Sprintf("correct node %d transmitted rbmessage claiming source %d",
					e.From, m.Source),
			}
		}
	}
	for _, acc := range o.accepted() {
		if !o.correct.Contains(acc.Source) {
			continue // Byzantine sources may "send" anything
		}
		if _, ok := o.genuine[pairKey(acc.Source, acc.Body)]; !ok {
			return &Violation{
				Oracle: o.name,
				Round:  round,
				Detail: fmt.Sprintf("node %d accepted forged (%q, %d): correct source never sent it",
					acc.Node, acc.Body, acc.Source),
			}
		}
	}
	return nil
}

// Suite runs a set of oracles over a simulation, one Observe sweep per
// round. It implements simnet.RoundObserver, so it attaches directly as
// Config.Observer. Each oracle reports at most one violation (its first);
// the suite keeps observing the remaining oracles after one fires.
type Suite struct {
	oracles    []Oracle
	fired      []bool
	violations []Violation
}

var _ simnet.RoundObserver = (*Suite)(nil)

// NewSuite builds a suite over the given oracles.
func NewSuite(oracles ...Oracle) *Suite {
	return &Suite{oracles: oracles, fired: make([]bool, len(oracles))}
}

// Add appends another oracle to the suite.
func (s *Suite) Add(o Oracle) {
	s.oracles = append(s.oracles, o)
	s.fired = append(s.fired, false)
}

// ObserveRound implements simnet.RoundObserver.
func (s *Suite) ObserveRound(round int, events []trace.Event) {
	for i, o := range s.oracles {
		if s.fired[i] {
			continue
		}
		if v := o.Observe(round, events); v != nil {
			s.fired[i] = true
			s.violations = append(s.violations, *v)
		}
	}
}

// StatsOracle is the optional extension of Oracle for monitors that
// consume the engine's per-round accounting (broadcast/unicast tallies)
// rather than trace events — the runtime complexity oracle implements
// it.
type StatsOracle interface {
	Oracle
	// ObserveStats checks one round's ledger; nil means no violation.
	ObserveStats(round int, acct simnet.RoundAccounting) *Violation
}

var _ simnet.RoundStatsObserver = (*Suite)(nil)

// ObserveRoundStats implements simnet.RoundStatsObserver: every
// not-yet-fired StatsOracle in the suite sees each successful round's
// accounting, right after the event sweep.
func (s *Suite) ObserveRoundStats(round int, acct simnet.RoundAccounting) {
	for i, o := range s.oracles {
		if s.fired[i] {
			continue
		}
		so, ok := o.(StatsOracle)
		if !ok {
			continue
		}
		if v := so.ObserveStats(round, acct); v != nil {
			s.fired[i] = true
			s.violations = append(s.violations, *v)
		}
	}
}

// Violations returns all recorded violations in firing order.
func (s *Suite) Violations() []Violation {
	out := make([]Violation, len(s.violations))
	copy(out, s.violations)
	return out
}

// First returns the first violation recorded, or nil.
func (s *Suite) First() *Violation {
	if len(s.violations) == 0 {
		return nil
	}
	v := s.violations[0]
	return &v
}

// Failed reports whether any oracle has fired.
func (s *Suite) Failed() bool { return len(s.violations) > 0 }
