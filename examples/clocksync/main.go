// Clock synchronization: the classic application of approximate
// agreement (the paper cites Welch–Lynch-style synchronization as the
// motivating use of the primitive).
//
// Each machine's clock has drifted by an unknown offset; a few machines
// are Byzantine and report inconsistent clock readings to different
// peers. The machines iterate the id-only reduction rule on their clock
// offsets until the honest clocks agree to within 50 microseconds, then
// each applies its correction — all without knowing how many machines
// participate or how many are faulty.
//
//	go run ./examples/clocksync
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"uba"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const (
		machines  = 10
		byzantine = 3
		epsilonUs = 50.0 // target agreement: 50 µs
	)
	rng := rand.New(rand.NewSource(11))

	// Clock offsets in microseconds relative to true time: up to ±5 ms.
	offsets := make([]float64, machines)
	for i := range offsets {
		offsets[i] = (rng.Float64() - 0.5) * 10_000
	}
	lo, hi := bounds(offsets)
	fmt.Fprintf(w, "%d machines, %d Byzantine; clock offsets span [%.0f, %.0f] µs\n",
		machines, byzantine, lo, hi)

	rounds := 1
	for spread := hi - lo; spread > epsilonUs; spread /= 2 {
		rounds++
	}
	fmt.Fprintf(w, "running %d reduction rounds (range halves per round)\n\n", rounds)

	res, err := uba.IteratedApproximateAgreement(uba.Config{
		Correct:   machines,
		Byzantine: byzantine,
		Adversary: uba.AdversarySplit, // faulty clocks report ±10¹² µs
		Seed:      11,
	}, offsets, rounds)
	if err != nil {
		return err
	}

	for i, r := range res.RangePerRound {
		fmt.Fprintf(w, "round %2d: honest clock disagreement %10.3f µs\n", i+1, r)
	}

	fLo, fHi := bounds(res.Estimates)
	fmt.Fprintf(w, "\nagreed correction target: %.3f µs (±%.3f)\n",
		(fLo+fHi)/2, (fHi-fLo)/2)
	for i, target := range res.Estimates {
		correction := target - offsets[i]
		fmt.Fprintf(w, "machine %2d: offset %+9.1f µs -> correct by %+9.1f µs\n",
			i, offsets[i], correction)
	}
	if fHi-fLo > epsilonUs {
		return fmt.Errorf("synchronization failed: %.3f µs spread", fHi-fLo)
	}
	fmt.Fprintf(w, "\nclocks synchronized to %.3f µs without knowing n or f\n", fHi-fLo)
	return nil
}

func bounds(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
