// Sensor fusion: approximate agreement in a wireless sensor network with
// an unknown, changing number of faulty sensors — one of the paper's
// motivating scenarios.
//
// A field of temperature sensors must converge on a common reading. Some
// sensors are compromised and report wildly different extreme values to
// different peers. No sensor knows how many peers exist or how many are
// compromised; each applies the id-only reduction rule (discard the
// lowest and highest third of what it heard, take the midpoint — paper
// Algorithm 4), iterated until the readings agree to within 0.01°C.
//
//	go run ./examples/sensorfusion
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"uba"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const (
		sensors     = 13
		compromised = 4
		epsilon     = 0.01
	)
	rng := rand.New(rand.NewSource(7))

	// True temperature 21.5°C, per-sensor measurement noise ±1.5°C.
	readings := make([]float64, sensors)
	for i := range readings {
		readings[i] = 21.5 + (rng.Float64()-0.5)*3
	}
	lo, hi := bounds(readings)
	fmt.Fprintf(w, "%d sensors (+%d compromised, reporting ±10⁶ °C to opposite halves)\n",
		sensors, compromised)
	fmt.Fprintf(w, "raw readings span [%.3f, %.3f] — spread %.3f°C\n\n", lo, hi, hi-lo)

	// Range halves per round: ⌈log2(spread/ε)⌉ rounds suffice.
	rounds := 1
	for spread := hi - lo; spread > epsilon; spread /= 2 {
		rounds++
	}

	res, err := uba.IteratedApproximateAgreement(uba.Config{
		Correct:   sensors,
		Byzantine: compromised,
		Adversary: uba.AdversarySplit,
		Seed:      7,
	}, readings, rounds)
	if err != nil {
		return err
	}

	for i, r := range res.RangePerRound {
		fmt.Fprintf(w, "round %2d: honest-sensor spread %.6f°C\n", i+1, r)
	}
	fLo, fHi := bounds(res.Estimates)
	fmt.Fprintf(w, "\nfused reading: %.4f..%.4f°C (spread %.6f ≤ ε = %v)\n",
		fLo, fHi, fHi-fLo, epsilon)
	fmt.Fprintf(w, "all fused values stayed inside the honest range [%.3f, %.3f]\n", lo, hi)
	fmt.Fprintf(w, "traffic: %v\n", res.Report)
	return nil
}

func bounds(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
