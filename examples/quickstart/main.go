// Quickstart: Byzantine consensus among nodes that know neither the
// system size n nor the failure bound f.
//
// Seven correct nodes with disagreeing inputs face two Byzantine nodes
// that split-vote opposite values to opposite halves of the network. The
// id-only consensus algorithm (paper Algorithm 3) still drives everyone
// to a common decision in O(f) rounds — without any node ever being told
// how many participants exist.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"uba"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cfg := uba.Config{
		Correct:   7,
		Byzantine: 2,
		Adversary: uba.AdversarySplit,
		Seed:      2020, // PODC 2020
	}
	fmt.Fprintf(w, "cluster: n = %d nodes (%d correct, %d Byzantine), n > 3f: %v\n",
		cfg.N(), cfg.Correct, cfg.Byzantine, cfg.Resilient())
	fmt.Fprintln(w, "no node knows n or f; identifiers are sparse random 48-bit values")

	inputs := []float64{0, 1, 0, 1, 0, 1, 1}
	fmt.Fprintf(w, "inputs: %v (disagreement), adversary: split-voting 0 vs 1\n\n", inputs)

	res, err := uba.Consensus(cfg, inputs)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "decision:    %v (every correct node)\n", res.Decision)
	fmt.Fprintf(w, "rounds:      %d\n", res.Rounds)
	fmt.Fprintf(w, "traffic:     %v\n", res.Report)
	fmt.Fprintln(w)

	// Unanimous inputs terminate in a single five-round phase plus two
	// initialization rounds — independent of n.
	uniRes, err := uba.Consensus(uba.Config{
		Correct: 22, Byzantine: 7, Seed: 2020,
	}, repeat(3.14, 22))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unanimous inputs at n=29: decided %v in %d rounds (early termination)\n",
		uniRes.Decision, uniRes.Rounds)
	return nil
}

func repeat(x float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = x
	}
	return out
}
