package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke executes the example end-to-end, so lint or API changes
// cannot break it unnoticed.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"step 1: renaming", "step 2: rotor", "step 3: epoch consensus", "cluster is up"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}
