// Cluster bring-up: a database cluster that scales without central
// configuration — the paper's node-scaling motivation.
//
// Machines come up with sparse 48-bit hardware identifiers; nobody is
// told the cluster size. The bring-up pipeline chains three id-only
// primitives:
//
//  1. Byzantine renaming (appendix algorithm) compacts the sparse ids to
//     slot numbers 1..n — consistent at every correct machine even with
//     Byzantine machines injecting ghost identifiers;
//
//  2. the rotor-coordinator (Algorithm 2) guarantees a round in which
//     every correct machine accepted the same correct machine's proposal;
//
//  3. consensus (Algorithm 3) commits the cluster epoch configuration
//     value.
//
// Run it with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"uba"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cfg := uba.Config{
		Correct:   9,
		Byzantine: 2,
		Adversary: uba.AdversaryGhost,
		Seed:      4242,
	}
	fmt.Fprintf(w, "bring-up: %d machines (%d healthy, %d Byzantine), nobody knows n or f\n\n",
		cfg.N(), cfg.Correct, cfg.Byzantine)

	// Step 1: renaming — compact, consistent slot numbers.
	names, err := uba.Renaming(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "step 1: renaming finished in %d rounds, %d slots assigned\n",
		names.Rounds, len(names.Names))
	type slot struct {
		id   uint64
		name int
	}
	slots := make([]slot, 0, len(names.Names))
	for id, name := range names.Names {
		slots = append(slots, slot{id, name})
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].name < slots[j].name })
	for _, s := range slots {
		fmt.Fprintf(w, "        slot %2d <- machine %d\n", s.name, s.id)
	}

	// Step 2: rotor — a guaranteed good leader round despite ghost ids.
	rotor, err := uba.Rotor(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstep 2: rotor-coordinator finished in %d rounds;\n", rotor.Rounds)
	fmt.Fprintf(w, "        a common correct leader's proposal was accepted in round %d\n", rotor.GoodRound)

	// Step 3: consensus on the epoch configuration value. Machines boot
	// with conflicting candidate epochs; the Byzantine pair split-votes.
	epochVotes := []float64{1, 1, 2, 1, 2, 2, 1, 2, 1}
	commit, err := uba.Consensus(uba.Config{
		Correct:   cfg.Correct,
		Byzantine: cfg.Byzantine,
		Adversary: uba.AdversarySplit,
		Seed:      cfg.Seed,
	}, epochVotes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstep 3: epoch consensus committed epoch=%v in %d rounds\n",
		commit.Decision, commit.Rounds)
	fmt.Fprintf(w, "\ncluster is up: %d slots, epoch %v, zero knowledge of n or f required\n",
		len(names.Names), commit.Decision)
	return nil
}
