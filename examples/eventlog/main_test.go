package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke executes the example end-to-end, so lint or API changes
// cannot break it unnoticed.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"finalized log", "chain-prefix verified", "joined replica submits tx"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}
