// Event log: a permissionless-style totally-ordered log over a dynamic
// membership — the paper's blockchain motivation.
//
// A set of founding replicas orders a stream of transactions (paper
// Algorithm 6: one parallel-consensus execution per round, finality after
// the 5|S|/2+2 horizon). Mid-run a new replica joins via the present/ack
// handshake, submits its own transactions, and later leaves. A Byzantine
// replica is present throughout. Every correct replica ends with the
// same chain prefix — without any replica knowing how many participants
// the system has at any moment.
//
//	go run ./examples/eventlog
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"uba"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cluster, err := uba.NewOrderingCluster(uba.Config{
		Correct:   5,
		Byzantine: 1,
		Seed:      99,
	})
	if err != nil {
		return err
	}
	replicas := cluster.Members()
	fmt.Fprintf(w, "booting ordered log: %d replicas + 1 Byzantine\n\n", len(replicas))

	nextTx := 100.0
	submit := func(replica uint64) error {
		if err := cluster.SubmitEvent(replica, nextTx); err != nil {
			return err
		}
		nextTx++
		return nil
	}

	var joiner uint64
	for round := 1; round <= 90; round++ {
		// A transaction lands at a rotating replica every other round.
		if round%2 == 0 {
			if err := submit(replicas[(round/2)%len(replicas)]); err != nil {
				return err
			}
		}
		switch round {
		case 20:
			joiner, err = cluster.Join()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "round %2d: replica %d requests to join\n", round, joiner)
		case 30:
			if err := submit(joiner); err != nil {
				return err
			}
			fmt.Fprintf(w, "round %2d: joined replica submits tx\n", round)
		case 60:
			if err := cluster.Leave(joiner); err != nil {
				return err
			}
			fmt.Fprintf(w, "round %2d: joined replica leaves\n", round)
		}
		if err := cluster.RunRounds(1); err != nil {
			return err
		}
	}

	// All correct replicas expose the same chain (prefix property).
	reference, err := cluster.Chain(replicas[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfinalized log (%d transactions):\n", len(reference))
	for i, e := range reference {
		who := "founder"
		if e.Submitter == joiner {
			who = "joiner "
		}
		fmt.Fprintf(w, "%3d. tx=%g  (round %d, %s %d)\n", i+1, e.Value, e.Round, who, e.Submitter)
	}

	for _, r := range replicas[1:] {
		chain, err := cluster.Chain(r)
		if err != nil {
			return err
		}
		for i := range chain {
			if chain[i] != reference[i] {
				return fmt.Errorf("chain prefix violated at replica %d, entry %d", r, i)
			}
		}
	}
	fmt.Fprintf(w, "\nchain-prefix verified across all %d correct replicas\n", len(replicas))
	fmt.Fprintf(w, "traffic: %v\n", cluster.Report())
	return nil
}
