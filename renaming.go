package uba

import (
	"fmt"
	"math/rand"

	"uba/internal/adversary"
	"uba/internal/core/renaming"
	"uba/internal/ids"
	"uba/internal/simnet"
	"uba/internal/trace"
)

// RenamingResult is the outcome of a Renaming run.
type RenamingResult struct {
	// Names maps each correct node's original id to its new compact
	// name (consistent across all correct nodes).
	Names map[uint64]int
	// SetSize is the size of the agreed identifier set.
	SetSize int
	// Rounds is the number of rounds until all correct nodes finished.
	Rounds int
	// Report is the traffic accounting.
	Report trace.Report
}

// Renaming runs the appendix Byzantine-renaming algorithm: sparse ids in,
// compact consistent names out. AdversaryGhost injects non-existent
// identifiers into the set agreement.
func Renaming(cfg Config) (*RenamingResult, error) {
	cl, err := newCluster(cfg, "renaming")
	if err != nil {
		return nil, err
	}
	defer cl.close()
	nodes := make([]*renaming.Node, 0, cfg.Correct)
	for _, id := range cl.correctIDs {
		node := renaming.New(id)
		nodes = append(nodes, node)
		if err := cl.net.Add(node); err != nil {
			return nil, err
		}
	}
	ghosts := ids.Sparse(rand.New(rand.NewSource(cfg.Seed+31)), 2*cfg.Byzantine+2)
	err = cl.addByzantine(func(id ids.ID, i int) simnet.Process {
		switch cfg.adversary() {
		case AdversaryGhost:
			return adversary.NewGhostCandidate(id, cl.dir, ghosts)
		case AdversaryNoise:
			return adversary.NewRandomNoise(id, cl.dir, cfg.Seed+int64(i)+1)
		case AdversaryCrash:
			after := cfg.CrashAfterRound
			if after <= 0 {
				after = 3
			}
			return adversary.NewCrash(renaming.New(id), after)
		default:
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	rounds, err := cl.run(simnet.AllDone(cl.correctIDs))
	if err != nil {
		return nil, fmt.Errorf("renaming run: %w", err)
	}
	res := &RenamingResult{
		Names:  make(map[uint64]int, cfg.Correct),
		Rounds: rounds,
		Report: cl.report(),
	}
	base := nodes[0].FinalSet()
	res.SetSize = base.Len()
	for _, node := range nodes {
		if !node.FinalSet().Equal(base) {
			return nil, fmt.Errorf("%w: renaming sets differ", ErrDisagreement)
		}
		name, ok := node.NewName()
		if !ok {
			return nil, fmt.Errorf("uba: node %v has no name", node.ID())
		}
		res.Names[uint64(node.ID())] = name
	}
	return res, nil
}
